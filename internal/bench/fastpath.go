package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/cxl"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/shm"
)

// Fast-path microbenchmark: wall time and device accesses per operation.
//
// The experiments above measure throughput shapes; this one measures the
// fast-path claim directly — how many device words each allocation,
// reclamation, and reference-transfer operation actually touches. On real
// CXL hardware every one of those words is a memory-bus round trip, so the
// loads/stores/CAS columns are the architecture-independent cost of an
// operation, while ns/op is the simulator-local time (measured with access
// counting enabled, so it slightly overstates absolute cost; compare runs,
// not machines).

// FastPathRow is one operation's measured per-op cost.
type FastPathRow struct {
	Op       string  `json:"op"`
	NsPerOp  float64 `json:"ns_per_op"`
	Loads    float64 `json:"device_loads_per_op"`
	Stores   float64 `json:"device_stores_per_op"`
	CASes    float64 `json:"device_cas_per_op"`
	Accesses float64 `json:"device_accesses_per_op"`
}

// fastPathBatch is the batch size used for the SendBatch/ReceiveBatch rows.
const fastPathBatch = 64

// FastPath measures the allocation and reference-transfer fast paths on an
// access-counting pool: Malloc, ReleaseRoot (free), single Send and
// Receive+release, and their batched variants (per transferred reference).
func FastPath(scale Scale) ([]FastPathRow, error) {
	p, err := shm.NewPool(shm.Config{
		Geometry: layout.GeometryConfig{
			MaxClients:   8,
			NumSegments:  128,
			SegmentWords: 1 << 15,
			PageWords:    1 << 11,
		},
		CountAccesses: true,
	})
	if err != nil {
		return nil, err
	}
	dev := p.Device()
	c, err := p.Connect()
	if err != nil {
		return nil, err
	}

	n := scale.N(50_000)
	roots := make([]layout.Addr, 0, n)
	// Warm the page caches so the rows measure the steady-state fast path,
	// not first-touch page claiming.
	for i := 0; i < 256; i++ {
		r, _, err := c.Malloc(64, 0)
		if err != nil {
			return nil, err
		}
		roots = append(roots, r)
	}
	for _, r := range roots {
		if _, err := c.ReleaseRoot(r); err != nil {
			return nil, err
		}
	}
	roots = roots[:0]

	var rows []FastPathRow
	measure := func(op string, iters int, f func() error) error {
		dev.ResetStats()
		t0 := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", op, err)
		}
		el := time.Since(t0)
		s := dev.Stats()
		rows = append(rows, fastPathRow(op, iters, el, s))
		return nil
	}

	if err := measure("malloc", n, func() error {
		for i := 0; i < n; i++ {
			r, _, err := c.Malloc(64, 0)
			if err != nil {
				return err
			}
			roots = append(roots, r)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := measure("free", n, func() error {
		for _, r := range roots {
			if _, err := c.ReleaseRoot(r); err != nil {
				return err
			}
		}
		roots = roots[:0]
		return nil
	}); err != nil {
		return nil, err
	}

	// Reference transfer: a dedicated sender/receiver pair and one shared
	// object, so the rows isolate queue costs from allocation costs (the
	// receiver's RootRef claim/release is part of Receive by design).
	snd, err := p.Connect()
	if err != nil {
		return nil, err
	}
	rcv, err := p.Connect()
	if err != nil {
		return nil, err
	}
	_, q, err := snd.CreateQueue(rcv.ID(), 256)
	if err != nil {
		return nil, err
	}
	if _, err := rcv.OpenQueue(q); err != nil {
		return nil, err
	}
	_, obj, err := snd.Malloc(64, 0)
	if err != nil {
		return nil, err
	}

	m := scale.N(50_000)
	if err := measure("send+receive+release", m, func() error {
		for i := 0; i < m; i++ {
			if err := snd.Send(q, obj); err != nil {
				return err
			}
			root, _, err := rcv.Receive(q)
			if err != nil {
				return err
			}
			if _, err := rcv.ReleaseRoot(root); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	targets := make([]layout.Addr, fastPathBatch)
	for i := range targets {
		targets[i] = obj
	}
	batches := m / fastPathBatch
	if err := measure("send+receive+release (batch)", batches*fastPathBatch, func() error {
		for i := 0; i < batches; i++ {
			sent, err := snd.SendBatch(q, targets)
			if err != nil {
				return err
			}
			if sent != fastPathBatch {
				return fmt.Errorf("short batch send: %d", sent)
			}
			rs, _, err := rcv.ReceiveBatch(q, fastPathBatch)
			if err != nil {
				return err
			}
			for _, root := range rs {
				if _, err := rcv.ReleaseRoot(root); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

func fastPathRow(op string, iters int, el time.Duration, s cxl.Stats) FastPathRow {
	n := float64(iters)
	return FastPathRow{
		Op:       op,
		NsPerOp:  float64(el.Nanoseconds()) / n,
		Loads:    float64(s.Loads) / n,
		Stores:   float64(s.Stores) / n,
		CASes:    float64(s.CASes) / n,
		Accesses: float64(s.Loads+s.Stores+s.CASes) / n,
	}
}

// PrintFastPath renders the fast-path rows.
func PrintFastPath(w io.Writer, rows []FastPathRow) {
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.Op, f1(r.NsPerOp), f2(r.Loads), f2(r.Stores), f2(r.CASes), f2(r.Accesses),
		}
	}
	PrintTable(w, []string{"Op", "ns/op", "loads/op", "stores/op", "CAS/op", "accesses/op"}, table)
}

// fastPathDoc is the BENCH_fastpath.json document shape. Provenance says
// what build and environment produced the committed numbers — without it a
// stale BENCH_fastpath.json is unfalsifiable.
type fastPathDoc struct {
	Benchmark  string          `json:"benchmark"`
	Provenance *obs.Provenance `json:"provenance,omitempty"`
	Rows       []FastPathRow   `json:"rows"`
}

// MarshalFastPath renders the rows as the BENCH_fastpath.json document.
// prov may be nil (tests).
func MarshalFastPath(rows []FastPathRow, prov *obs.Provenance) ([]byte, error) {
	return json.MarshalIndent(fastPathDoc{
		Benchmark: "fastpath", Provenance: prov, Rows: rows,
	}, "", "  ")
}

// UnmarshalFastPath parses a BENCH_fastpath.json document.
func UnmarshalFastPath(data []byte) ([]FastPathRow, error) {
	var doc fastPathDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	if doc.Benchmark != "fastpath" {
		return nil, fmt.Errorf("not a fastpath document (benchmark %q)", doc.Benchmark)
	}
	return doc.Rows, nil
}

// CompareFastPath checks fresh rows against committed ones, returning one
// message per regression: an operation whose device accesses per op grew
// more than tolerance (fractional, e.g. 0.10) over the committed value, or
// an operation that disappeared. Wall time is deliberately not compared —
// ns/op is machine-local, while device accesses are the deterministic,
// architecture-independent cost this benchmark exists to pin.
func CompareFastPath(committed, fresh []FastPathRow, tolerance float64) []string {
	byOp := make(map[string]FastPathRow, len(fresh))
	for _, r := range fresh {
		byOp[r.Op] = r
	}
	var regressions []string
	for _, want := range committed {
		got, ok := byOp[want.Op]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("%s: missing from fresh run", want.Op))
			continue
		}
		if limit := want.Accesses * (1 + tolerance); got.Accesses > limit {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.2f device accesses/op, committed %.2f (+%.0f%% > %.0f%% tolerance)",
				want.Op, got.Accesses, want.Accesses,
				(got.Accesses/want.Accesses-1)*100, tolerance*100))
		}
	}
	return regressions
}
