package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/cxl"
	"repro/internal/kv"
	"repro/internal/layout"
	"repro/internal/lightning"
	"repro/internal/shm"
	"repro/internal/workload"
)

// Fig10Row is one point of the Figure 10 key-value experiments.
type Fig10Row struct {
	Figure   string // "10a".."10d"
	System   string
	Workload string
	Clients  int
	MOPS     float64
}

const kvValueSize = 64

// kvIface is the operation surface all three stores expose to the driver.
type kvIface interface {
	Put(key uint64, val []byte) error
	Get(key uint64, buf []byte) (int, error)
	Delete(key uint64) error
}

// lightningKV adapts a Lightning client to kvIface.
type lightningKV struct{ c *lightning.Client }

func (l lightningKV) Put(key uint64, val []byte) error { return l.c.Put(key, val) }
func (l lightningKV) Get(key uint64, buf []byte) (int, error) {
	v, err := l.c.Get(key)
	if err != nil {
		return 0, err
	}
	return copy(buf, v), nil
}
func (l lightningKV) Delete(key uint64) error { return l.c.Delete(key) }

// kvPool sizes a pool for KV experiments.
func kvPool(clients int) (*shm.Pool, error) {
	return kvPoolLatency(clients, cxl.Latency{})
}

// kvPoolLatency additionally enables the device latency model (used by the
// Figure 10c skew experiment, whose effect is cache locality).
func kvPoolLatency(clients int, lat cxl.Latency) (*shm.Pool, error) {
	return shm.NewPool(shm.Config{
		Geometry: layout.GeometryConfig{
			MaxClients:   clients + 4,
			NumSegments:  8*clients + 64,
			SegmentWords: 1 << 15,
			PageWords:    1 << 11,
		},
		Latency: lat,
	})
}

// kvBenchBuckets is the index size shared by every Figure 10 store so the
// bucket-based partitioning is identical across systems.
const kvBenchBuckets = 4096

// runKVClients drives `clients` goroutines, each obtaining its store handle
// from mk and executing its op stream; returns aggregate MOPS. Writes are
// confined to each client's bucket partition (the single-writer rule —
// §6.4); reads may touch the entire key space (shared-everything). The same
// partitioning is applied to every system so workloads are identical.
func runKVClients(clients int, mk func(i int) (kvIface, error),
	ops func(i int) []workload.Op, totalKeys int, reallocWrites bool) (float64, error) {
	handles := make([]kvIface, clients)
	streams := make([][]workload.Op, clients)
	// Per-client write-key pools: the keys whose bucket partition the client
	// owns. Write ops index into this pool, preserving the stream's
	// distribution shape while respecting single-writer.
	writeKeys := make([][]uint64, clients)
	for k := 0; k < totalKeys; k++ {
		p := kv.Partition(uint64(k), kvBenchBuckets, clients)
		writeKeys[p] = append(writeKeys[p], uint64(k))
	}
	for i := 0; i < clients; i++ {
		h, err := mk(i)
		if err != nil {
			return 0, err
		}
		handles[i] = h
		streams[i] = ops(i)
	}
	// Preload every key through its partition owner.
	val := make([]byte, kvValueSize)
	for k := 0; k < totalKeys; k++ {
		owner := kv.Partition(uint64(k), kvBenchBuckets, clients)
		if err := handles[owner].Put(uint64(k), val); err != nil {
			return 0, fmt.Errorf("preload key %d: %w", k, err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	total := 0
	start := time.Now()
	for i := 0; i < clients; i++ {
		total += len(streams[i])
		wg.Add(1)
		go func(h kvIface, ops []workload.Op, own []uint64) {
			defer wg.Done()
			buf := make([]byte, kvValueSize)
			val := make([]byte, kvValueSize)
			for _, op := range ops {
				if op.Kind == workload.OpWrite && len(own) > 0 {
					key := own[op.Key%uint64(len(own))]
					if reallocWrites {
						// The write replaces the record: free the old one
						// and allocate a new one. The write/read-ratio
						// experiment attributes the gap to exactly this —
						// "the writing operations involve memory allocations
						// that execute memory fences" (§6.4).
						if err := h.Delete(key); err != nil &&
							err != kv.ErrNotFound && err != lightning.ErrNotFound {
							errs <- err
							return
						}
					}
					if err := h.Put(key, val); err != nil {
						errs <- err
						return
					}
				} else {
					if _, err := h.Get(op.Key%uint64(totalKeys), buf); err != nil &&
						err != kv.ErrNotFound && err != lightning.ErrNotFound {
						errs <- err
						return
					}
				}
			}
			errs <- nil
		}(handles[i], streams[i], writeKeys[i])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return mops(total, time.Since(start)), nil
}

// Fig10a compares TBB-KV, CXL-KV, and Lightning across client counts on a
// uniform 1:1 write/read mix.
func Fig10a(scale Scale, clientCounts []int) ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, n := range clientCounts {
		totalKeys := 1000 * n
		opsN := scale.N(20_000)
		mkOps := func(i int) []workload.Op {
			s, _ := workload.NewKVStream(workload.KVConfig{
				Keys: totalKeys, WriteRatio: 0.5, Seed: int64(100 + i),
			})
			return s.Fill(opsN)
		}

		// TBB-KV.
		tbb := kv.NewTBBKV(16)
		m, err := runKVClients(n, func(int) (kvIface, error) { return tbb, nil }, mkOps, totalKeys, false)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig10Row{"10a", "TBB-KV", "uniform 1:1", n, m})

		// CXL-KV.
		pool, err := kvPool(n)
		if err != nil {
			return nil, err
		}
		creator, err := pool.Connect()
		if err != nil {
			return nil, err
		}
		if _, err := kv.Create(creator, 0, kvBenchBuckets, kvValueSize, n); err != nil {
			return nil, err
		}
		m, err = runKVClients(n, func(int) (kvIface, error) {
			c, err := pool.Connect()
			if err != nil {
				return nil, err
			}
			return kv.Open(c, 0)
		}, mkOps, totalKeys, false)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig10Row{"10a", "CXL-KV", "uniform 1:1", n, m})

		// Lightning.
		store, err := lightning.NewStore(1<<24, 1<<15)
		if err != nil {
			return nil, err
		}
		m, err = runKVClients(n, func(int) (kvIface, error) {
			return lightningKV{store.Connect()}, nil
		}, mkOps, totalKeys, false)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig10Row{"10a", "Lightning*", "uniform 1:1", n, m})
	}
	return rows, nil
}

// Fig10b sweeps the write/read ratio for CXL-KV at a fixed client count.
func Fig10b(scale Scale, clients int, writeRatios []float64) ([]Fig10Row, error) {
	var rows []Fig10Row
	totalKeys := 1000 * clients
	for _, ratio := range writeRatios {
		opsN := scale.N(20_000)
		pool, err := kvPool(clients)
		if err != nil {
			return nil, err
		}
		creator, err := pool.Connect()
		if err != nil {
			return nil, err
		}
		if _, err := kv.Create(creator, 0, kvBenchBuckets, kvValueSize, clients); err != nil {
			return nil, err
		}
		m, err := runKVClients(clients, func(int) (kvIface, error) {
			c, err := pool.Connect()
			if err != nil {
				return nil, err
			}
			return kv.Open(c, 0)
		}, func(i int) []workload.Op {
			s, _ := workload.NewKVStream(workload.KVConfig{
				Keys: totalKeys, WriteRatio: ratio, Seed: int64(200 + i),
			})
			return s.Fill(opsN)
		}, totalKeys, true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig10Row{"10b", "CXL-KV", fmt.Sprintf("W=%.2f", ratio), clients, m})
	}
	return rows, nil
}

// Fig10c sweeps YCSB zipf skew for CXL-KV across client counts.
func Fig10c(scale Scale, clientCounts []int, zipfs []float64) ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, n := range clientCounts {
		totalKeys := 1000 * n
		for _, z := range zipfs {
			opsN := scale.N(20_000)
			// Skew pays off through cache locality (§6.4): model the CXL
			// access latency with the per-client line cache, so hot records
			// hit the modelled cache and cold ones pay the miss.
			pool, err := kvPoolLatency(n, cxl.Latency{MissNS: 300, CASNS: 300})
			if err != nil {
				return nil, err
			}
			creator, err := pool.Connect()
			if err != nil {
				return nil, err
			}
			if _, err := kv.Create(creator, 0, kvBenchBuckets, kvValueSize, n); err != nil {
				return nil, err
			}
			m, err := runKVClients(n, func(int) (kvIface, error) {
				c, err := pool.Connect()
				if err != nil {
					return nil, err
				}
				return kv.Open(c, 0)
			}, func(i int) []workload.Op {
				s, _ := workload.NewKVStream(workload.KVConfig{
					Keys: totalKeys, WriteRatio: 0.1, Zipf: z, Seed: int64(300 + i),
				})
				return s.Fill(opsN)
			}, totalKeys, false)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig10Row{"10c", "CXL-KV", fmt.Sprintf("zipf=%.2f", z), n, m})
		}
	}
	return rows, nil
}

// Fig10d runs the TATP and SmallBank read-write mixes on CXL-KV and TBB-KV.
func Fig10d(scale Scale, clientCounts []int) ([]Fig10Row, error) {
	var rows []Fig10Row
	const subsPerClient = 500
	mkTATP := func(i int) []workload.Op {
		s, _ := workload.NewTATP(subsPerClient, int64(400+i))
		var ops []workload.Op
		n := scale.N(5_000)
		for t := 0; t < n; t++ {
			ops = append(ops, s.Next().Ops()...)
		}
		return ops
	}
	mkSB := func(i int) []workload.Op {
		s, _ := workload.NewSmallBank(subsPerClient, int64(500+i))
		var ops []workload.Op
		n := scale.N(5_000)
		for t := 0; t < n; t++ {
			ops = append(ops, s.Next().Ops()...)
		}
		return ops
	}
	for _, n := range clientCounts {
		for _, wl := range []struct {
			name string
			mk   func(int) []workload.Op
			keys int
		}{
			{"TATP", mkTATP, subsPerClient * 4},
			{"SmallBank", mkSB, subsPerClient * 2},
		} {
			pool, err := kvPool(n)
			if err != nil {
				return nil, err
			}
			creator, err := pool.Connect()
			if err != nil {
				return nil, err
			}
			if _, err := kv.Create(creator, 0, kvBenchBuckets, kvValueSize, n); err != nil {
				return nil, err
			}
			m, err := runKVClients(n, func(int) (kvIface, error) {
				c, err := pool.Connect()
				if err != nil {
					return nil, err
				}
				return kv.Open(c, 0)
			}, wl.mk, wl.keys, false)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig10Row{"10d", "CXL-KV", wl.name, n, m})

			tbb := kv.NewTBBKV(16)
			m, err = runKVClients(n, func(int) (kvIface, error) { return tbb, nil }, wl.mk, wl.keys, false)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig10Row{"10d", "TBB-KV", wl.name, n, m})
		}
	}
	return rows, nil
}

// PrintFig10 renders Figure 10 rows.
func PrintFig10(w io.Writer, rows []Fig10Row) {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Figure, r.Workload, fmt.Sprint(r.Clients), r.System, f2(r.MOPS)}
	}
	PrintTable(w, []string{"Fig", "Workload", "Clients", "System", "MOPS"}, out)
}
