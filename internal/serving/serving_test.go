package serving_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/kv"
	"repro/internal/netrpc"
	"repro/internal/serving"
	"repro/internal/shm"
)

func newServingPool(t *testing.T, cfg serving.ChaosConfig) *shm.Pool {
	t.Helper()
	p, err := shm.NewPool(shm.Config{Geometry: serving.SizeGeometry(cfg)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.CloseDevice() })
	return p
}

// startStore creates the kv index and two workers owning partitions 0/1.
func startStore(t *testing.T, p *shm.Pool, keys, valSize int) (w0, w1 *serving.Worker) {
	t.Helper()
	c, err := p.Connect()
	if err != nil {
		t.Fatal(err)
	}
	st, err := kv.Create(c, 0, 1024, valSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, valSize)
	for k := 0; k < keys; k++ {
		for i := range buf {
			buf[i] = byte(k + i)
		}
		if err := st.Put(uint64(k), buf); err != nil {
			t.Fatal(err)
		}
	}
	// The creator stays open (and unenforcing: it holds no partition
	// lease) so this test needs no recovery service.
	t.Cleanup(func() { st.Close(); c.Close() })
	mk := func(part int) *serving.Worker {
		w, err := serving.StartWorker(p, serving.WorkerConfig{
			Partitions: []int{part},
			Net:        netrpc.Config{ReadTimeout: 5 * time.Second, WriteTimeout: 5 * time.Second},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Stop() })
		return w
	}
	return mk(0), mk(1)
}

func TestServingRoundTrip(t *testing.T) {
	cfg := serving.ChaosConfig{Workers: 2, Keys: 500, ValSize: 32}
	p := newServingPool(t, cfg)
	w0, _ := startStore(t, p, 500, 32)

	conn, err := serving.DialWorker(w0.Addr(), netrpc.Config{ReadTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if cid, err := conn.Ping(); err != nil || cid != w0.CID() {
		t.Fatalf("ping: cid=%d err=%v, want %d", cid, err, w0.CID())
	}

	val, found, err := conn.Get(7)
	if err != nil || !found {
		t.Fatalf("get 7: found=%v err=%v", found, err)
	}
	if len(val) != 32 || val[0] != 7 || val[1] != 8 {
		t.Fatalf("get 7: bad value %v", val[:4])
	}
	if _, found, err = conn.Get(999999); err != nil || found {
		t.Fatalf("get missing: found=%v err=%v", found, err)
	}

	n, err := conn.Scan(0, 100)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if n != 100 {
		t.Fatalf("scan returned %d records, want 100", n)
	}

	st, err := conn.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.CID != w0.CID() || st.Buckets != 1024 || st.Writers != 2 || st.ValSize != 32 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestServingWriteOwnership pins the single-writer rule through the wire:
// a put for a partition the worker does not own comes back as a
// *netrpc.ServerError, not a success and not a dropped connection.
func TestServingWriteOwnership(t *testing.T) {
	cfg := serving.ChaosConfig{Workers: 2, Keys: 100, ValSize: 32}
	p := newServingPool(t, cfg)
	w0, w1 := startStore(t, p, 100, 32)

	conn0, err := serving.DialWorker(w0.Addr(), netrpc.Config{ReadTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer conn0.Close()

	// Find one key in each partition.
	key0, key1 := uint64(0), uint64(0)
	for k := uint64(0); ; k++ {
		if kv.Partition(k, 1024, 2) == 0 {
			key0 = k
			break
		}
	}
	for k := uint64(0); ; k++ {
		if kv.Partition(k, 1024, 2) == 1 {
			key1 = k
			break
		}
	}

	val := make([]byte, 32)
	if err := conn0.Put(key0, val); err != nil {
		t.Fatalf("put own partition: %v", err)
	}
	err = conn0.Put(key1, val)
	var se *netrpc.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("put foreign partition: err=%v, want *netrpc.ServerError", err)
	}
	// The connection must survive the refused write.
	if _, err := conn0.Ping(); err != nil {
		t.Fatalf("connection dead after refused write: %v", err)
	}

	// Takeover moves ownership: worker 0 steals partition 1, the same put
	// now succeeds.
	if err := conn0.Takeover(1); err != nil {
		t.Fatalf("takeover: %v", err)
	}
	if err := conn0.Put(key1, val); err != nil {
		t.Fatalf("put after takeover: %v", err)
	}
	_ = w1
}
