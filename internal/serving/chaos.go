package serving

import (
	"bufio"
	"fmt"
	"math/bits"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"repro/internal/check"
	"repro/internal/kv"
	"repro/internal/layout"
	"repro/internal/netrpc"
	"repro/internal/recovery"
	"repro/internal/shm"
)

// ChaosConfig shapes one serving run: geometry, workload, and the failure
// to inject.
type ChaosConfig struct {
	Workers int // serving workers (= writer partitions)

	Keys    int
	ValSize int
	Buckets int // 0: sized from Keys

	WriteRatio float64
	Zipf       float64

	Conns      int // driver goroutines
	OpsPerConn int
	ScanEvery  int
	ScanSpan   int
	Seed       int64

	// Kill injects the partial failure: one worker is killed abruptly
	// mid-traffic, the monitor must fence and recover it, and a survivor
	// takes over its partition.
	Kill bool

	RootSlot int
	Net      netrpc.Config

	HeartbeatEvery   time.Duration
	MonitorInterval  time.Duration
	MonitorThreshold int
	RecoveryWorkers  int
	FailoverWait     time.Duration
}

func (c *ChaosConfig) fill() {
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if c.Keys <= 0 {
		c.Keys = 50_000
	}
	if c.ValSize <= 0 {
		c.ValSize = 64
	}
	if c.Buckets <= 0 {
		c.Buckets = defaultBuckets(c.Keys)
	}
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if c.OpsPerConn <= 0 {
		c.OpsPerConn = 5_000
	}
	if c.WriteRatio == 0 {
		c.WriteRatio = 0.3
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 2 * time.Millisecond
	}
	if c.MonitorInterval <= 0 {
		c.MonitorInterval = 10 * time.Millisecond
	}
	if c.MonitorThreshold <= 0 {
		// ~50ms of grace against a 2ms heartbeat. Tighter settings (5ms x 3)
		// false-positive on small machines: a worker's heartbeat goroutine
		// can be starved for >15ms by scheduler queueing or dirty-page
		// writeback throttling on the mmap backend, and fencing a live
		// worker turns a chaos drill into real survivor damage.
		c.MonitorThreshold = 5
	}
	if c.RecoveryWorkers <= 0 {
		c.RecoveryWorkers = 4
	}
	if c.FailoverWait <= 0 {
		c.FailoverWait = 10 * time.Second
	}
}

// defaultBuckets sizes the hash table at roughly keys/4 (mean chain ~4),
// rounded up to a power of two and capped at 32Ki — the bucket count is
// the index object's embedded-reference count, which the meta word caps
// at layout.MaxEmbedRefs (65535).
func defaultBuckets(keys int) int {
	b := keys / 4
	if b < 1024 {
		return 1024
	}
	if b > 32768 {
		return 32768
	}
	return 1 << bits.Len(uint(b-1))
}

// SizeGeometry computes a pool geometry that fits the configured store
// with headroom: each record costs its value plus header words, the index
// is one huge object of ~Buckets words, and segments are doubled so
// recovery always has clean segments to adopt into.
func SizeGeometry(cfg ChaosConfig) layout.GeometryConfig {
	cfg.fill()
	recWords := uint64(cfg.ValSize+15)/8 + 6
	need := uint64(cfg.Keys)*recWords + uint64(cfg.Buckets)*2 + 1<<16
	const segWords = 1 << 16
	segs := int(2 * need / segWords)
	if segs < 64 {
		segs = 64
	}
	if segs > 8192 {
		segs = 8192
	}
	return layout.GeometryConfig{
		MaxClients:   cfg.Workers + cfg.RecoveryWorkers + 8,
		NumSegments:  segs,
		SegmentWords: segWords,
	}
}

// WorkerProc is one serving worker as the orchestrator sees it — in this
// process or a child OS process.
type WorkerProc interface {
	Addr() string
	CID() int
	// Kill ends the worker abruptly: no goodbye, no client close — the
	// slot is left for the monitor to fence (kill -9 semantics).
	Kill() error
	// Shutdown ends the worker cleanly (serve-drain then client close).
	Shutdown() error
}

// Spawner starts worker idx with the given config.
type Spawner func(idx int, cfg WorkerConfig) (WorkerProc, error)

type inprocProc struct{ w *Worker }

func (p *inprocProc) Addr() string    { return p.w.Addr() }
func (p *inprocProc) CID() int        { return p.w.CID() }
func (p *inprocProc) Kill() error     { p.w.Abandon(); return nil }
func (p *inprocProc) Shutdown() error { return p.w.Stop() }

// InProcSpawner runs workers as goroutine sets inside this process,
// sharing pool. Kill abandons the worker's client slot without closing it
// — the same corpse a killed process leaves. Works on any backend,
// including heap.
func InProcSpawner(pool *shm.Pool) Spawner {
	return func(idx int, cfg WorkerConfig) (WorkerProc, error) {
		w, err := StartWorker(pool, cfg)
		if err != nil {
			return nil, err
		}
		return &inprocProc{w}, nil
	}
}

// ReadyPrefix starts the line a child worker process prints on stdout once
// it is serving: "SERVING <addr> <cid>".
const ReadyPrefix = "SERVING "

// ReadyLine formats the child readiness line.
func ReadyLine(addr string, cid int) string {
	return fmt.Sprintf("%s%s %d", ReadyPrefix, addr, cid)
}

type childProc struct {
	cmd  *exec.Cmd
	addr string
	cid  int
	net  netrpc.Config
}

func (p *childProc) Addr() string { return p.addr }
func (p *childProc) CID() int     { return p.cid }

func (p *childProc) Kill() error {
	if err := p.cmd.Process.Kill(); err != nil {
		return err
	}
	p.cmd.Wait()
	return nil
}

func (p *childProc) Shutdown() error {
	conn, err := DialWorker(p.addr, p.net)
	if err == nil {
		conn.Quit()
		conn.Close()
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(10 * time.Second):
		p.cmd.Process.Kill()
		return fmt.Errorf("serving: worker %d did not exit on quit", p.cid)
	}
}

// ExecSpawner runs each worker as a child OS process built by mkCmd (which
// must arrange for the child to attach the pool file, start a worker, and
// print ReadyLine on stdout). The spawner waits for that line, then
// forwards the rest of the child's stdout to ours.
func ExecSpawner(net netrpc.Config, mkCmd func(idx int) *exec.Cmd) Spawner {
	return func(idx int, cfg WorkerConfig) (WorkerProc, error) {
		cmd := mkCmd(idx)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if !strings.HasPrefix(line, ReadyPrefix) {
				fmt.Fprintln(os.Stderr, line)
				continue
			}
			var addr string
			var cid int
			if _, err := fmt.Sscanf(line, ReadyPrefix+"%s %d", &addr, &cid); err != nil {
				cmd.Process.Kill()
				cmd.Wait()
				return nil, fmt.Errorf("serving: bad ready line %q: %w", line, err)
			}
			go func() { // drain the rest so the child never blocks on stdout
				for sc.Scan() {
				}
			}()
			return &childProc{cmd: cmd, addr: addr, cid: cid, net: net}, nil
		}
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("serving: worker %d exited before ready (%v)", idx, sc.Err())
	}
}

// ChaosResult is the outcome of one serving run, JSON-shaped for
// BENCH_serving.json.
type ChaosResult struct {
	Workers    int     `json:"workers"`
	Keys       int     `json:"keys"`
	ValSize    int     `json:"val_size"`
	Buckets    int     `json:"buckets"`
	WriteRatio float64 `json:"write_ratio"`
	Zipf       float64 `json:"zipf"`
	Conns      int     `json:"conns"`
	OpsPerConn int     `json:"ops_per_conn"`

	Ops       uint64  `json:"ops"`
	WallNS    int64   `json:"wall_ns"`
	OpsPerSec float64 `json:"ops_per_sec"`

	ReadP50NS   int64 `json:"read_p50_ns"`
	ReadP99NS   int64 `json:"read_p99_ns"`
	WriteP50NS  int64 `json:"write_p50_ns"`
	WriteP99NS  int64 `json:"write_p99_ns"`
	ScanP50NS   int64 `json:"scan_p50_ns,omitempty"`
	ScanP99NS   int64 `json:"scan_p99_ns,omitempty"`
	WindowP99NS int64 `json:"window_p99_ns,omitempty"`

	SurvivorErrors uint64 `json:"survivor_errors"`
	VictimErrors   uint64 `json:"victim_errors"`
	StalledWrites  uint64 `json:"stalled_writes"`
	LostWrites     uint64 `json:"lost_writes"`
	Corruptions    uint64 `json:"corruptions"`
	Rerouted       uint64 `json:"rerouted"`

	Killed                 bool  `json:"killed"`
	VictimWorker           int   `json:"victim_worker,omitempty"`
	VictimCID              int   `json:"victim_cid,omitempty"`
	DetectToRecoveredNS    int64 `json:"detect_to_recovered_ns,omitempty"`
	TimelineDetectToRecNS  int64 `json:"timeline_detect_to_recovered_ns,omitempty"`
	TakeoverNS             int64 `json:"takeover_ns,omitempty"`
	DisruptionNS           int64 `json:"disruption_ns,omitempty"`

	FsckClean  bool `json:"fsck_clean"`
	FsckIssues int  `json:"fsck_issues"`
}

// RunChaos executes one full serving run on pool: preload, spawn workers
// through spawn, drive traffic, optionally kill one worker mid-stream and
// fail its partition over, then drain, recover every slot, and fsck.
func RunChaos(pool *shm.Pool, spawn Spawner, cfg ChaosConfig) (*ChaosResult, error) {
	cfg.fill()

	// Preload through a direct pool client: partition leases are all zero
	// at this point, so the single-writer rule is unenforced and one
	// loader can fill every partition.
	creator, err := pool.Connect()
	if err != nil {
		return nil, err
	}
	loader, err := kv.Create(creator, cfg.RootSlot, cfg.Buckets, cfg.ValSize, cfg.Workers)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, cfg.ValSize)
	for k := 0; k < cfg.Keys; k++ {
		valFor(uint64(k), buf)
		if err := loader.Put(uint64(k), buf); err != nil {
			return nil, fmt.Errorf("serving: preload key %d: %w", k, err)
		}
	}
	loader.Close()
	creator.FlushMetrics()
	creator.Close()

	// The loader slot parks dead until recovered; do it now so the monitor
	// started below only ever sees worker deaths. The named root keeps the
	// index alive through its creator's death (§5.3 roots outlive owners).
	svc, err := recovery.NewServiceWorkers(pool, cfg.RecoveryWorkers)
	if err != nil {
		return nil, err
	}
	if _, err := svc.RecoverClient(creator.ID()); err != nil {
		return nil, fmt.Errorf("serving: recover loader: %w", err)
	}

	procs := make([]WorkerProc, cfg.Workers)
	addrs := make([]string, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		p, err := spawn(i, WorkerConfig{
			RootSlot:       cfg.RootSlot,
			Partitions:     []int{i},
			HeartbeatEvery: cfg.HeartbeatEvery,
			Net:            cfg.Net,
		})
		if err != nil {
			return nil, fmt.Errorf("serving: spawn worker %d: %w", i, err)
		}
		procs[i] = p
		addrs[i] = p.Addr()
	}

	mon := recovery.NewMonitor(svc, recovery.MonitorConfig{
		Interval:  cfg.MonitorInterval,
		Threshold: cfg.MonitorThreshold,
	})
	mon.Start()
	var monStop sync.Once
	stopMon := func() { monStop.Do(mon.Stop) }
	defer stopMon()

	driver, err := NewDriver(addrs, DriverConfig{
		Keys: cfg.Keys, ValSize: cfg.ValSize,
		Buckets: cfg.Buckets, Writers: cfg.Workers,
		WriteRatio: cfg.WriteRatio, Zipf: cfg.Zipf,
		Conns: cfg.Conns, OpsPerConn: cfg.OpsPerConn,
		ScanEvery: cfg.ScanEvery, ScanSpan: cfg.ScanSpan,
		Seed: cfg.Seed, Net: cfg.Net, FailoverWait: cfg.FailoverWait,
	})
	if err != nil {
		return nil, err
	}

	type runOut struct {
		rep *DriverReport
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		rep, err := driver.Run()
		done <- runOut{rep, err}
	}()

	res := &ChaosResult{
		Workers: cfg.Workers, Keys: cfg.Keys, ValSize: cfg.ValSize,
		Buckets: cfg.Buckets, WriteRatio: cfg.WriteRatio, Zipf: cfg.Zipf,
		Conns: cfg.Conns, OpsPerConn: cfg.OpsPerConn,
	}

	victim := -1
	if cfg.Kill {
		victim = cfg.Workers / 2
		total := uint64(cfg.Conns) * uint64(cfg.OpsPerConn)
		for driver.OpsDone() < total/3 {
			time.Sleep(time.Millisecond)
		}
		victimCID := procs[victim].CID()
		driver.ExpectDown(victim)
		driver.SetWindow(true)
		killAt := time.Now()
		if err := procs[victim].Kill(); err != nil {
			return nil, fmt.Errorf("serving: kill worker %d: %w", victim, err)
		}

		// The monitor owns detection: wait for its recovery record.
		var rec recovery.RecoveryRecord
		for found := false; !found; {
			for _, r := range mon.Recoveries() {
				if r.Client == victimCID {
					rec, found = r, true
					break
				}
			}
			if !found {
				if time.Since(killAt) > 30*time.Second {
					return nil, fmt.Errorf("serving: victim cid %d not recovered within 30s", victimCID)
				}
				time.Sleep(time.Millisecond)
			}
		}

		// Metadata-only failover: a survivor steals the dead writer's
		// partition lease, and the driver re-routes writes to it.
		survivor := (victim + 1) % cfg.Workers
		conn, err := DialWorker(addrs[survivor], cfg.Net)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		err = conn.Takeover(victim)
		conn.Close()
		if err != nil {
			return nil, fmt.Errorf("serving: takeover by worker %d: %w", survivor, err)
		}
		res.TakeoverNS = time.Since(t0).Nanoseconds()
		driver.SetRoute(victim, survivor)
		driver.SetWindow(false)

		res.Killed = true
		res.VictimWorker = victim
		res.VictimCID = victimCID
		res.DetectToRecoveredNS = rec.Duration.Nanoseconds()
		res.DisruptionNS = time.Since(killAt).Nanoseconds()
		if tl, ok := pool.Telemetry().ReadTimeline(victimCID); ok {
			res.TimelineDetectToRecNS = tl.DurationNS
		}
	}

	out := <-done
	if out.rep != nil {
		rep := out.rep
		res.Ops = rep.Ops
		res.WallNS = rep.Wall.Nanoseconds()
		if rep.Wall > 0 {
			res.OpsPerSec = float64(rep.Ops) / rep.Wall.Seconds()
		}
		res.ReadP50NS = rep.Read.Percentile(0.50)
		res.ReadP99NS = rep.Read.Percentile(0.99)
		res.WriteP50NS = rep.Write.Percentile(0.50)
		res.WriteP99NS = rep.Write.Percentile(0.99)
		res.ScanP50NS = rep.Scan.Percentile(0.50)
		res.ScanP99NS = rep.Scan.Percentile(0.99)
		res.WindowP99NS = rep.Window.Percentile(0.99)
		res.SurvivorErrors = rep.SurvivorErrors
		res.VictimErrors = rep.VictimErrors
		res.StalledWrites = rep.StalledWrites
		res.LostWrites = rep.LostWrites
		res.Corruptions = rep.Corruptions
		res.Rerouted = rep.Rerouted
	}
	if out.err != nil {
		return res, out.err
	}

	// Drain: stop the monitor before the survivors' clean exits so their
	// parked-dead slots are recovered exactly once, by us.
	stopMon()
	for i, p := range procs {
		if i == victim {
			continue
		}
		cid := p.CID()
		if err := p.Shutdown(); err != nil {
			return res, fmt.Errorf("serving: shutdown worker %d: %w", i, err)
		}
		if _, err := svc.RecoverClient(cid); err != nil {
			return res, fmt.Errorf("serving: recover worker %d (cid %d): %w", i, cid, err)
		}
	}

	chk := check.Validate(pool)
	res.FsckClean = chk.Clean()
	res.FsckIssues = len(chk.Issues)
	return res, nil
}
