package serving

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kv"
	"repro/internal/netrpc"
	"repro/internal/shm"
)

// WorkerConfig shapes one serving worker.
type WorkerConfig struct {
	// RootSlot is the named-root slot the kv index is published at.
	RootSlot int
	// Partitions this worker acquires at startup (its write ownership).
	Partitions []int
	// Steal passes through to AcquirePartition: take over a dead writer's
	// lease (failover restart) instead of refusing a held one.
	Steal bool
	// HeartbeatEvery is the client heartbeat cadence (default 2ms) — the
	// liveness signal the recovery monitor watches.
	HeartbeatEvery time.Duration
	// Net tunes the RPC server (MaxPayload, deadlines).
	Net netrpc.Config
}

// WorkerStats is the FnStats response: identity, serving counters, and the
// store shape a driver needs to route partitions without out-of-band
// configuration.
type WorkerStats struct {
	CID        int   `json:"cid"`
	Ops        uint64 `json:"ops"`
	Errors     uint64 `json:"errors"`
	Partitions []int `json:"partitions"`
	Buckets    int   `json:"buckets"`
	Writers    int   `json:"writers"`
	ValSize    int   `json:"val_size"`
}

// Worker is one serving process's state: a pool attachment, a kv.Store
// handle, the partitions it owns, and the RPC server in front of them.
//
// Concurrency model: one shm.Client per OS process, and shm.Client is not
// thread-safe — so the handler serializes on a mutex, mirroring the
// paper's one-client-per-process model. netrpc spawns a goroutine per
// connection; they queue on the mutex. The heartbeat ticker shares it.
type Worker struct {
	pool     *shm.Pool
	ownsPool bool
	c        *shm.Client
	store    *kv.Store
	srv      *netrpc.Server

	mu    sync.Mutex // serializes all use of the single shm.Client
	parts map[int]bool

	ops, errs atomic.Uint64
	quit      chan struct{}
	quitOnce  sync.Once

	hbStop   chan struct{}
	hbDone   chan struct{}
	stopOnce sync.Once
}

// StartWorker attaches a worker to an already-open pool (in-process mode:
// tests and the heap-backend smoke leg). The worker does not own the pool.
func StartWorker(pool *shm.Pool, cfg WorkerConfig) (*Worker, error) {
	return startWorker(pool, false, cfg)
}

// StartWorkerFile opens the mmap pool file at path and starts a worker on
// it — the child-process mode: each worker process attaches the shared
// file independently, exactly as CXL memory is shared between hosts.
func StartWorkerFile(path string, cfg WorkerConfig) (*Worker, error) {
	pool, err := shm.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("serving: open pool %s: %w", path, err)
	}
	w, err := startWorker(pool, true, cfg)
	if err != nil {
		pool.CloseDevice()
		return nil, err
	}
	return w, nil
}

func startWorker(pool *shm.Pool, owns bool, cfg WorkerConfig) (*Worker, error) {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 2 * time.Millisecond
	}
	c, err := pool.Connect()
	if err != nil {
		return nil, err
	}
	store, err := kv.Open(c, cfg.RootSlot)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("serving: open kv root %d: %w", cfg.RootSlot, err)
	}
	w := &Worker{
		pool: pool, ownsPool: owns, c: c, store: store,
		parts:  make(map[int]bool),
		quit:   make(chan struct{}),
		hbStop: make(chan struct{}),
		hbDone: make(chan struct{}),
	}
	for _, p := range cfg.Partitions {
		if !w.store.AcquirePartition(p, cfg.Steal) {
			w.teardown()
			return nil, fmt.Errorf("serving: partition %d held by live writer %d",
				p, w.store.PartitionOwner(p))
		}
		w.parts[p] = true
	}
	srv, err := netrpc.NewServerConfig(w.handle, cfg.Net)
	if err != nil {
		w.teardown()
		return nil, err
	}
	w.srv = srv
	go w.heartbeatLoop(cfg.HeartbeatEvery)
	return w, nil
}

// Addr returns the worker's RPC dial address.
func (w *Worker) Addr() string { return w.srv.Addr() }

// CID returns the worker's client slot ID.
func (w *Worker) CID() int { return w.c.ID() }

// QuitRequested is closed when a peer sends FnQuit; the owning process
// should then call Stop and exit.
func (w *Worker) QuitRequested() <-chan struct{} { return w.quit }

func (w *Worker) heartbeatLoop(every time.Duration) {
	defer close(w.hbDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-w.hbStop:
			return
		case <-t.C:
			w.mu.Lock()
			w.c.Heartbeat()
			w.mu.Unlock()
		}
	}
}

func (w *Worker) handle(fn uint64, payload []byte) ([]byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.ops.Add(1)
	resp, err := w.dispatch(fn, payload)
	if err != nil {
		w.errs.Add(1)
	}
	return resp, err
}

func (w *Worker) dispatch(fn uint64, payload []byte) ([]byte, error) {
	switch fn {
	case FnPing:
		resp := make([]byte, 8)
		putU64(resp, uint64(w.c.ID()))
		return resp, nil

	case FnGet:
		if len(payload) != 8 {
			return nil, reqError(fn, 8, len(payload))
		}
		key := u64(payload)
		resp := make([]byte, 1+w.store.ValueSize())
		n, err := w.store.Get(key, resp[1:])
		if errors.Is(err, kv.ErrNotFound) {
			return resp[:1], nil
		}
		if err != nil {
			return nil, err
		}
		resp[0] = 1
		return resp[:1+n], nil

	case FnPut:
		if len(payload) < 8 {
			return nil, reqError(fn, 8, len(payload))
		}
		key, val := u64(payload), payload[8:]
		// In-place update through the zero-copy write lease when the key
		// exists (§6.4 atomic in-place update); insert otherwise.
		err := w.store.Update(key, func(dst []byte) error {
			copy(dst, val)
			return nil
		})
		if errors.Is(err, kv.ErrNotFound) {
			err = w.store.Put(key, val)
		}
		return nil, err

	case FnScan:
		if len(payload) != 16 {
			return nil, reqError(fn, 16, len(payload))
		}
		start := int(u64(payload) % uint64(w.store.Buckets()))
		want := int(u64(payload[8:]))
		if want <= 0 || want > maxScanRecords {
			want = maxScanRecords
		}
		valSize := w.store.ValueSize()
		resp := make([]byte, 16, 16+want*(8+valSize))
		putU64(resp[8:], uint64(valSize))
		count := 0
		// One scan covers a window of buckets sized so a sparse table
		// still yields records without walking the whole index.
		window := w.store.Buckets()
		w.store.RangeBuckets(start, window, func(key uint64, val []byte) bool {
			var kb [8]byte
			putU64(kb[:], key)
			resp = append(resp, kb[:]...)
			resp = append(resp, val...)
			count++
			return count < want
		})
		putU64(resp, uint64(count))
		return resp, nil

	case FnTakeover:
		if len(payload) != 8 {
			return nil, reqError(fn, 8, len(payload))
		}
		p := int(u64(payload))
		if !w.store.AcquirePartition(p, true) {
			return nil, fmt.Errorf("takeover of partition %d refused (owner %d)",
				p, w.store.PartitionOwner(p))
		}
		w.parts[p] = true
		return nil, nil

	case FnStats:
		st := WorkerStats{
			CID:     w.c.ID(),
			Ops:     w.ops.Load(),
			Errors:  w.errs.Load(),
			Buckets: w.store.Buckets(),
			Writers: w.store.Writers(),
			ValSize: w.store.ValueSize(),
		}
		for p := range w.parts {
			st.Partitions = append(st.Partitions, p)
		}
		return json.Marshal(st)

	case FnQuit:
		w.quitOnce.Do(func() { close(w.quit) })
		return nil, nil
	}
	return nil, fmt.Errorf("unknown function %d", fn)
}

// Abandon simulates kill -9 for in-process chaos: the RPC server and the
// heartbeat stop dead, but the shm client is NOT closed — its slot stays
// ALIVE with a frozen heartbeat, exactly what a killed process leaves
// behind, and the recovery monitor must detect, fence, and recover it.
func (w *Worker) Abandon() {
	w.stopOnce.Do(func() { close(w.hbStop) })
	<-w.hbDone
	w.srv.Close()
}

// Stop shuts the worker down cleanly: RPC drained, heartbeat stopped,
// store and client closed (the slot still parks as dead — pool-attached
// state is reclaimed by recovery, as for any departed client).
func (w *Worker) Stop() error {
	w.stopOnce.Do(func() { close(w.hbStop) })
	<-w.hbDone
	err := w.srv.Close()
	w.teardown()
	return err
}

func (w *Worker) teardown() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.store != nil {
		w.store.Close()
		w.store = nil
	}
	if w.c != nil {
		w.c.Close()
		w.c = nil
	}
	if w.ownsPool {
		w.pool.CloseDevice()
	}
}
