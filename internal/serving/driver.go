package serving

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kv"
	"repro/internal/netrpc"
	"repro/internal/workload"
)

// DriverConfig shapes the load driver.
type DriverConfig struct {
	Keys    int // key space size
	ValSize int // fixed value size (must match the store)
	// Store shape, needed to compute each key's writer partition.
	Buckets, Writers int

	WriteRatio float64 // fraction of writes
	Zipf       float64 // YCSB zipfian constant θ (0 = uniform)

	Conns      int // concurrent driver goroutines
	OpsPerConn int // operations each goroutine issues
	ScanEvery  int // every Nth op is a batch scan (0 disables)
	ScanSpan   int // records per scan batch

	Seed int64
	Net  netrpc.Config

	// FailoverWait bounds how long a write whose partition's worker is
	// down waits for the route to fail over before counting as lost.
	FailoverWait time.Duration
}

// DriverReport is the outcome of one Run.
type DriverReport struct {
	Ops, Reads, Writes, Scans uint64

	// SurvivorErrors counts failures on workers NOT marked as the expected
	// victim — the chaos invariant is that this stays zero.
	SurvivorErrors uint64
	// VictimErrors counts failed calls to the expected victim (in-flight
	// at the kill; inherent to abrupt death).
	VictimErrors uint64
	// Rerouted counts reads and scans redirected from a down worker to a
	// survivor.
	Rerouted uint64
	// StalledWrites counts writes that had to wait for their partition to
	// fail over.
	StalledWrites uint64
	// LostWrites counts writes whose partition never failed over within
	// FailoverWait (chaos invariant: zero).
	LostWrites uint64
	// Corruptions counts reads whose value didn't match the deterministic
	// content for the key (invariant: zero).
	Corruptions uint64

	Read, Write, Scan *LatencyHist
	// Window collects read+write latencies observed while the chaos
	// window was open (kill through restored routing).
	Window *LatencyHist

	Wall time.Duration
}

// Driver replays workload streams against a set of workers, routing each
// write to its partition's current owner and failing reads over to
// survivors the moment a worker dies.
type Driver struct {
	cfg   DriverConfig
	addrs []string

	route  []atomic.Int32 // partition → worker index
	down   []atomic.Bool  // worker index → known dead
	victim atomic.Int32   // expected-down worker index (-1: none)
	window atomic.Bool

	opsDone atomic.Uint64

	survivorErrs, victimErrs   atomic.Uint64
	rerouted, stalled, lost    atomic.Uint64
	corruptions                atomic.Uint64
}

// NewDriver builds a driver over the workers at addrs; worker i initially
// owns partition i (the serving tier's startup assignment).
func NewDriver(addrs []string, cfg DriverConfig) (*Driver, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("serving: driver needs at least one worker")
	}
	if cfg.Writers != len(addrs) {
		return nil, fmt.Errorf("serving: %d workers for %d partitions", len(addrs), cfg.Writers)
	}
	if cfg.Conns <= 0 || cfg.OpsPerConn <= 0 || cfg.Keys <= 0 {
		return nil, fmt.Errorf("serving: Conns, OpsPerConn, Keys must be positive")
	}
	if cfg.FailoverWait <= 0 {
		cfg.FailoverWait = 10 * time.Second
	}
	if cfg.ScanSpan <= 0 {
		cfg.ScanSpan = 64
	}
	d := &Driver{
		cfg: cfg, addrs: addrs,
		route: make([]atomic.Int32, cfg.Writers),
		down:  make([]atomic.Bool, len(addrs)),
	}
	for p := range d.route {
		d.route[p].Store(int32(p))
	}
	d.victim.Store(-1)
	return d, nil
}

// ExpectDown marks a worker as the sanctioned chaos victim: its failures
// count as victim errors, everyone else's stay survivor errors.
func (d *Driver) ExpectDown(worker int) { d.victim.Store(int32(worker)) }

// SetRoute points a partition at a new worker (after a takeover).
func (d *Driver) SetRoute(partition, worker int) {
	d.route[partition].Store(int32(worker))
}

// SetWindow opens or closes the chaos measurement window.
func (d *Driver) SetWindow(on bool) { d.window.Store(on) }

// OpsDone reports completed operations so far (the orchestrator uses it to
// time the kill mid-traffic).
func (d *Driver) OpsDone() uint64 { return d.opsDone.Load() }

// valFor writes key's deterministic value content into buf: every write of
// a key stores the same bytes, so any read can verify what it got.
func valFor(key uint64, buf []byte) {
	x := key*0x9e3779b97f4a7c15 + 1
	for i := range buf {
		buf[i] = byte(x >> (8 * (uint(i) % 8)))
		if i%8 == 7 {
			x = x*0x9e3779b97f4a7c15 + 1
		}
	}
}

// Preload stores every key through the serving path, partition-routed,
// parallel across Conns goroutines. (The chaos harness preloads directly
// through a pool client instead — faster and identical on-device.)
func (d *Driver) Preload() error {
	var wg sync.WaitGroup
	errCh := make(chan error, d.cfg.Conns)
	per := (d.cfg.Keys + d.cfg.Conns - 1) / d.cfg.Conns
	for g := 0; g < d.cfg.Conns; g++ {
		lo, hi := g*per, min((g+1)*per, d.cfg.Keys)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			conns, err := d.dialAll()
			if err != nil {
				errCh <- err
				return
			}
			defer closeAll(conns)
			buf := make([]byte, d.cfg.ValSize)
			for k := lo; k < hi; k++ {
				key := uint64(k)
				valFor(key, buf)
				p := kv.Partition(key, d.cfg.Buckets, d.cfg.Writers)
				if err := conns[d.route[p].Load()].Put(key, buf); err != nil {
					errCh <- fmt.Errorf("preload key %d: %w", key, err)
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

func (d *Driver) dialAll() ([]*Conn, error) {
	conns := make([]*Conn, len(d.addrs))
	for i, a := range d.addrs {
		c, err := DialWorker(a, d.cfg.Net)
		if err != nil {
			closeAll(conns[:i])
			return nil, fmt.Errorf("dial worker %d (%s): %w", i, a, err)
		}
		conns[i] = c
	}
	return conns, nil
}

func closeAll(conns []*Conn) {
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}

// noteError classifies a failed call to worker t and marks it down so
// subsequent operations route around it.
func (d *Driver) noteError(t int) {
	d.down[t].Store(true)
	if int(d.victim.Load()) == t {
		d.victimErrs.Add(1)
	} else {
		d.survivorErrs.Add(1)
	}
}

// liveWorker returns a live worker index, preferring hint.
func (d *Driver) liveWorker(hint int) int {
	for i := 0; i < len(d.addrs); i++ {
		t := (hint + i) % len(d.addrs)
		if !d.down[t].Load() {
			return t
		}
	}
	return hint // everyone down: caller's error will say so
}

// waitRoute waits for partition p's route to point at a live worker,
// returning it, or -1 on timeout.
func (d *Driver) waitRoute(p int) int {
	deadline := time.Now().Add(d.cfg.FailoverWait)
	for {
		t := int(d.route[p].Load())
		if !d.down[t].Load() {
			return t
		}
		if time.Now().After(deadline) {
			return -1
		}
		time.Sleep(500 * time.Microsecond)
	}
}

type driverShard struct {
	read, write, scan, window LatencyHist
	reads, writes, scans      uint64
}

// Run replays the configured workload and returns the merged report.
func (d *Driver) Run() (*DriverReport, error) {
	shards := make([]driverShard, d.cfg.Conns)
	errs := make(chan error, d.cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < d.cfg.Conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs <- d.runConn(g, &shards[g])
		}(g)
	}
	wg.Wait()
	rep := &DriverReport{
		Read: &LatencyHist{}, Write: &LatencyHist{}, Scan: &LatencyHist{}, Window: &LatencyHist{},
		Wall: time.Since(start),
	}
	for i := range shards {
		s := &shards[i]
		rep.Read.Merge(&s.read)
		rep.Write.Merge(&s.write)
		rep.Scan.Merge(&s.scan)
		rep.Window.Merge(&s.window)
		rep.Reads += s.reads
		rep.Writes += s.writes
		rep.Scans += s.scans
	}
	rep.Ops = rep.Reads + rep.Writes + rep.Scans
	rep.SurvivorErrors = d.survivorErrs.Load()
	rep.VictimErrors = d.victimErrs.Load()
	rep.Rerouted = d.rerouted.Load()
	rep.StalledWrites = d.stalled.Load()
	rep.LostWrites = d.lost.Load()
	rep.Corruptions = d.corruptions.Load()
	close(errs)
	for err := range errs {
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

func (d *Driver) runConn(g int, sh *driverShard) error {
	stream, err := workload.NewKVStream(workload.KVConfig{
		Keys: d.cfg.Keys, WriteRatio: d.cfg.WriteRatio, Zipf: d.cfg.Zipf,
		Seed: d.cfg.Seed + int64(g)*7919,
	})
	if err != nil {
		return err
	}
	conns, err := d.dialAll()
	if err != nil {
		return err
	}
	defer closeAll(conns)
	want := make([]byte, d.cfg.ValSize)
	for i := 0; i < d.cfg.OpsPerConn; i++ {
		op := stream.Next()
		inWindow := d.window.Load()
		if d.cfg.ScanEvery > 0 && i%d.cfg.ScanEvery == d.cfg.ScanEvery-1 {
			d.doScan(g+i, op.Key, conns, sh, inWindow)
		} else if op.Kind == workload.OpWrite {
			d.doWrite(op.Key, conns, sh, inWindow, want)
		} else {
			d.doRead(op.Key, conns, sh, inWindow, want)
		}
		d.opsDone.Add(1)
	}
	return nil
}

func (d *Driver) doRead(key uint64, conns []*Conn, sh *driverShard, inWindow bool, want []byte) {
	p := kv.Partition(key, d.cfg.Buckets, d.cfg.Writers)
	t := int(d.route[p].Load())
	// Reads are partition-agnostic (multi-reader): a down owner just means
	// read from any survivor.
	if d.down[t].Load() {
		t = d.liveWorker(t + 1)
		d.rerouted.Add(1)
	}
	for attempt := 0; attempt < 2; attempt++ {
		t0 := time.Now()
		val, found, err := conns[t].Get(key)
		ns := time.Since(t0).Nanoseconds()
		if err != nil {
			d.noteError(t)
			t = d.liveWorker(t + 1)
			d.rerouted.Add(1)
			continue
		}
		sh.read.Record(ns)
		if inWindow {
			sh.window.Record(ns)
		}
		sh.reads++
		if found {
			valFor(key, want)
			if !bytes.Equal(val, want) {
				d.corruptions.Add(1)
			}
		}
		return
	}
}

func (d *Driver) doWrite(key uint64, conns []*Conn, sh *driverShard, inWindow bool, buf []byte) {
	p := kv.Partition(key, d.cfg.Buckets, d.cfg.Writers)
	valFor(key, buf)
	for attempt := 0; attempt < 2; attempt++ {
		t := int(d.route[p].Load())
		if d.down[t].Load() {
			// The partition's writer is dead: the single-writer rule means
			// this write must wait for the metadata takeover, not reroute.
			d.stalled.Add(1)
			if t = d.waitRoute(p); t < 0 {
				d.lost.Add(1)
				return
			}
		}
		t0 := time.Now()
		err := conns[t].Put(key, buf)
		ns := time.Since(t0).Nanoseconds()
		if err != nil {
			d.noteError(t)
			continue
		}
		sh.write.Record(ns)
		if inWindow {
			sh.window.Record(ns)
		}
		sh.writes++
		return
	}
	d.lost.Add(1)
}

func (d *Driver) doScan(salt int, key uint64, conns []*Conn, sh *driverShard, inWindow bool) {
	start := uint64(salt) * 2654435761 % uint64(d.cfg.Buckets)
	t := d.liveWorker(salt % len(d.addrs))
	for attempt := 0; attempt < 2; attempt++ {
		t0 := time.Now()
		_, err := conns[t].Scan(start, uint64(d.cfg.ScanSpan))
		ns := time.Since(t0).Nanoseconds()
		if err != nil {
			d.noteError(t)
			t = d.liveWorker(t + 1)
			d.rerouted.Add(1)
			continue
		}
		sh.scan.Record(ns)
		if inWindow {
			sh.window.Record(ns)
		}
		sh.scans++
		return
	}
}
