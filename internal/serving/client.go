package serving

import (
	"encoding/json"
	"fmt"

	"repro/internal/netrpc"
)

// Conn is a typed client for one worker's RPC endpoint.
type Conn struct {
	c *netrpc.Client
}

// DialWorker connects to a worker.
func DialWorker(addr string, cfg netrpc.Config) (*Conn, error) {
	c, err := netrpc.DialConfig(addr, cfg)
	if err != nil {
		return nil, err
	}
	return &Conn{c: c}, nil
}

// Close closes the connection.
func (c *Conn) Close() error { return c.c.Close() }

// Ping returns the worker's client slot ID.
func (c *Conn) Ping() (int, error) {
	resp, err := c.c.Call(FnPing, nil)
	if err != nil {
		return 0, err
	}
	if len(resp) != 8 {
		return 0, fmt.Errorf("serving: ping response %d bytes", len(resp))
	}
	return int(u64(resp)), nil
}

// Get fetches key's value. found is false when the key does not exist.
func (c *Conn) Get(key uint64) (val []byte, found bool, err error) {
	var req [8]byte
	putU64(req[:], key)
	resp, err := c.c.Call(FnGet, req[:])
	if err != nil {
		return nil, false, err
	}
	if len(resp) < 1 {
		return nil, false, fmt.Errorf("serving: empty get response")
	}
	if resp[0] == 0 {
		return nil, false, nil
	}
	return resp[1:], true, nil
}

// Put writes key's value.
func (c *Conn) Put(key uint64, val []byte) error {
	req := make([]byte, 8+len(val))
	putU64(req, key)
	copy(req[8:], val)
	_, err := c.c.Call(FnPut, req)
	return err
}

// Scan fetches up to maxRecords records starting at startBucket and
// returns how many arrived (the records themselves are decoded only to be
// validated — the serving driver measures batch-read cost, not content).
func (c *Conn) Scan(startBucket, maxRecords uint64) (int, error) {
	var req [16]byte
	putU64(req[:8], startBucket)
	putU64(req[8:], maxRecords)
	resp, err := c.c.Call(FnScan, req[:])
	if err != nil {
		return 0, err
	}
	if len(resp) < 16 {
		return 0, fmt.Errorf("serving: short scan response (%d bytes)", len(resp))
	}
	count := int(u64(resp))
	valSize := int(u64(resp[8:]))
	if want := 16 + count*(8+valSize); len(resp) != want {
		return 0, fmt.Errorf("serving: scan response %d bytes, header promises %d", len(resp), want)
	}
	return count, nil
}

// Takeover asks the worker to steal write ownership of partition p — the
// §6.4 metadata-only failover: no data moves, one lease word changes.
func (c *Conn) Takeover(p int) error {
	var req [8]byte
	putU64(req[:], uint64(p))
	_, err := c.c.Call(FnTakeover, req[:])
	return err
}

// Stats fetches the worker's counters and store shape.
func (c *Conn) Stats() (WorkerStats, error) {
	var st WorkerStats
	resp, err := c.c.Call(FnStats, nil)
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(resp, &st)
}

// Quit asks the worker to shut down cleanly after responding.
func (c *Conn) Quit() error {
	_, err := c.c.Call(FnQuit, nil)
	return err
}
