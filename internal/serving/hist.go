package serving

import "math/bits"

// LatencyHist is a log-linear latency histogram (HDR-style): 32 linear
// sub-buckets per power-of-two octave over a 256 ns resolution floor, so
// every recorded value lands in a bucket within ~3% of its true value up
// to minutes of latency. Unsynchronized — each driver goroutine owns one
// and they are Merge'd after the run.
type LatencyHist struct {
	Buckets [histBuckets]uint64 `json:"-"`
	Count   uint64              `json:"count"`
	MaxNS   int64               `json:"max_ns"`
	SumNS   int64               `json:"sum_ns"`
}

const (
	histSubBits   = 5 // 32 sub-buckets per octave
	histSub       = 1 << histSubBits
	histUnitShift = 8 // 256 ns resolution floor
	histOctaves   = 28
	histBuckets   = histSub * (histOctaves + 2)
)

// bucketIdx maps a latency in nanoseconds to its bucket.
func bucketIdx(ns int64) int {
	u := uint64(ns) >> histUnitShift
	if u < histSub {
		return int(u)
	}
	k := bits.Len64(u) - 1 // floor(log2 u), ≥ histSubBits
	o := k - histSubBits
	if o > histOctaves {
		return histBuckets - 1
	}
	return o*histSub + int(u>>uint(o))
}

// bucketLowNS is the inclusive lower bound of bucket idx, in nanoseconds.
func bucketLowNS(idx int) int64 {
	if idx < histSub {
		return int64(idx) << histUnitShift
	}
	o := idx/histSub - 1
	s := idx % histSub
	return int64(histSub+s) << uint(o+histUnitShift)
}

// Record adds one latency observation.
func (h *LatencyHist) Record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.Buckets[bucketIdx(ns)]++
	h.Count++
	h.SumNS += ns
	if ns > h.MaxNS {
		h.MaxNS = ns
	}
}

// Merge adds o's observations into h.
func (h *LatencyHist) Merge(o *LatencyHist) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Count += o.Count
	h.SumNS += o.SumNS
	if o.MaxNS > h.MaxNS {
		h.MaxNS = o.MaxNS
	}
}

// Percentile returns the latency at quantile q ∈ [0,1] (bucket upper
// midpoint; 0 when empty).
func (h *LatencyHist) Percentile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	want := uint64(q * float64(h.Count))
	if want >= h.Count {
		want = h.Count - 1
	}
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		if cum > want {
			// Representative value: the bucket's midpoint, capped by the
			// recorded max so tiny histograms don't over-report.
			lo := bucketLowNS(i)
			hi := bucketLowNS(i + 1)
			mid := lo + (hi-lo)/2
			if mid > h.MaxNS {
				mid = h.MaxNS
			}
			return mid
		}
	}
	return h.MaxNS
}

// MeanNS returns the average observation.
func (h *LatencyHist) MeanNS() int64 {
	if h.Count == 0 {
		return 0
	}
	return h.SumNS / int64(h.Count)
}
