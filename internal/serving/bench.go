package serving

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/obs"
)

// ServingBench is the BENCH_serving.json document: one chaos serving run
// with provenance.
type ServingBench struct {
	Provenance *obs.Provenance `json:"provenance,omitempty"`
	Run        *ChaosResult    `json:"run"`
}

// WriteBench writes the document to path.
func (b *ServingBench) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBench reads a BENCH_serving.json.
func LoadBench(path string) (*ServingBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b ServingBench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("serving: parse %s: %w", path, err)
	}
	if b.Run == nil {
		return nil, fmt.Errorf("serving: %s has no run", path)
	}
	return &b, nil
}

// Compare gates cur against base. Hard invariants (survivors never error,
// no lost writes, no corruptions, fsck clean) are absolute; latency and
// recovery gates allow generous slack because serving latencies are
// wall-clock and machine-local — the repo's deterministic gates live in
// the access-count benchmarks, this one only has to catch order-of-
// magnitude regressions and invariant breaks.
func Compare(base, cur *ServingBench) []string {
	var bad []string
	b, c := base.Run, cur.Run

	if c.SurvivorErrors != 0 {
		bad = append(bad, fmt.Sprintf("survivor_errors = %d, want 0", c.SurvivorErrors))
	}
	if c.LostWrites != 0 {
		bad = append(bad, fmt.Sprintf("lost_writes = %d, want 0", c.LostWrites))
	}
	if c.Corruptions != 0 {
		bad = append(bad, fmt.Sprintf("corruptions = %d, want 0", c.Corruptions))
	}
	if !c.FsckClean {
		bad = append(bad, fmt.Sprintf("fsck not clean (%d issues)", c.FsckIssues))
	}
	if b.Killed && !c.Killed {
		bad = append(bad, "baseline run killed a worker, current did not")
	}

	gate := func(name string, base, cur, floor int64) {
		if base <= 0 {
			return
		}
		limit := 4 * base
		if limit < floor {
			limit = floor
		}
		if cur > limit {
			bad = append(bad, fmt.Sprintf("%s = %s, limit %s (4× baseline %s)",
				name, fmtNS(cur), fmtNS(limit), fmtNS(base)))
		}
	}
	// Floors keep tiny baselines from producing hair-trigger gates.
	gate("read_p99", b.ReadP99NS, c.ReadP99NS, 10_000_000)
	gate("write_p99", b.WriteP99NS, c.WriteP99NS, 10_000_000)
	gate("scan_p99", b.ScanP99NS, c.ScanP99NS, 50_000_000)
	gate("window_p99", b.WindowP99NS, c.WindowP99NS, 250_000_000)
	gate("detect_to_recovered", b.DetectToRecoveredNS, c.DetectToRecoveredNS, 2_000_000_000)
	gate("disruption", b.DisruptionNS, c.DisruptionNS, 5_000_000_000)
	return bad
}

func fmtNS(ns int64) string {
	switch {
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1_000_000:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	}
	return fmt.Sprintf("%dns", ns)
}
