package serving_test

import (
	"testing"
	"time"

	"repro/internal/netrpc"
	"repro/internal/serving"
	"repro/internal/shm"
)

// TestChaosInProcess runs the full serving chaos harness with in-process
// workers on the heap backend: preload, three workers serving zipfian
// traffic, one killed mid-stream, monitor-driven recovery, metadata-only
// partition takeover, and a clean fsck at the end.
func TestChaosInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	cfg := serving.ChaosConfig{
		Workers:    3,
		Keys:       4000,
		ValSize:    48,
		WriteRatio: 0.3,
		Zipf:       0.9,
		Conns:      4,
		OpsPerConn: 4000,
		ScanEvery:  64,
		ScanSpan:   32,
		Seed:       1,
		Kill:       true,
		Net:        netrpc.Config{ReadTimeout: 10 * time.Second, WriteTimeout: 10 * time.Second},
	}
	p, err := shm.NewPool(shm.Config{Geometry: serving.SizeGeometry(cfg)})
	if err != nil {
		t.Fatal(err)
	}
	defer p.CloseDevice()

	res, err := serving.RunChaos(p, serving.InProcSpawner(p), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ops=%d (%.0f/s) read p99=%v write p99=%v window p99=%v", res.Ops, res.OpsPerSec,
		time.Duration(res.ReadP99NS), time.Duration(res.WriteP99NS), time.Duration(res.WindowP99NS))
	t.Logf("victim worker %d cid %d: detect→recovered=%v takeover=%v disruption=%v victimErrs=%d stalled=%d",
		res.VictimWorker, res.VictimCID, time.Duration(res.DetectToRecoveredNS),
		time.Duration(res.TakeoverNS), time.Duration(res.DisruptionNS),
		res.VictimErrors, res.StalledWrites)

	if !res.Killed {
		t.Fatal("chaos run did not kill")
	}
	if res.SurvivorErrors != 0 {
		t.Errorf("survivors errored %d times, want 0", res.SurvivorErrors)
	}
	if res.LostWrites != 0 {
		t.Errorf("%d writes lost, want 0", res.LostWrites)
	}
	if res.Corruptions != 0 {
		t.Errorf("%d corrupt reads, want 0", res.Corruptions)
	}
	if res.DetectToRecoveredNS <= 0 {
		t.Error("no detect→recovered SLO measured")
	}
	if res.DetectToRecoveredNS > (10 * time.Second).Nanoseconds() {
		t.Errorf("detect→recovered %v implausibly slow", time.Duration(res.DetectToRecoveredNS))
	}
	if !res.FsckClean {
		t.Errorf("pool not fsck-clean after chaos (%d issues)", res.FsckIssues)
	}
	if res.Ops == 0 || res.ReadP99NS == 0 {
		t.Error("no traffic measured")
	}
}

// TestChaosNoKill is the control: same harness, no failure injected —
// nothing stalls, nothing reroutes, fsck clean.
func TestChaosNoKill(t *testing.T) {
	cfg := serving.ChaosConfig{
		Workers:    2,
		Keys:       1000,
		ValSize:    32,
		WriteRatio: 0.3,
		Zipf:       0.5,
		Conns:      2,
		OpsPerConn: 1000,
		Seed:       2,
		Net:        netrpc.Config{ReadTimeout: 10 * time.Second, WriteTimeout: 10 * time.Second},
	}
	p, err := shm.NewPool(shm.Config{Geometry: serving.SizeGeometry(cfg)})
	if err != nil {
		t.Fatal(err)
	}
	defer p.CloseDevice()

	res, err := serving.RunChaos(p, serving.InProcSpawner(p), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Killed || res.VictimErrors != 0 || res.SurvivorErrors != 0 ||
		res.StalledWrites != 0 || res.Rerouted != 0 {
		t.Errorf("control run saw disruption: %+v", res)
	}
	if res.Corruptions != 0 || res.LostWrites != 0 || !res.FsckClean {
		t.Errorf("control run integrity: %+v", res)
	}
	if res.Ops != 2000 {
		t.Errorf("ops=%d, want 2000", res.Ops)
	}
}
