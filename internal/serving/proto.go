// Package serving promotes the CXL-SHM pool into a network-facing serving
// tier: N worker OS processes (or in-process workers for tests) attach the
// same pool, each owns one writer partition of a shared kv.Store, and
// serves GET/PUT/SCAN over the internal/netrpc length-prefixed protocol.
// A driver replays internal/workload streams against the workers; a chaos
// orchestrator kills a worker mid-traffic and measures how the survivors
// and the recovery monitor absorb it — the paper's partial-failure story
// (§6.4 metadata-only repartitioning, §7 recovery SLO) exercised through a
// real serving stack instead of a single process.
package serving

import (
	"encoding/binary"
	"fmt"
)

// Wire functions. Payload formats (all integers little-endian):
//
//	FnPing     req: -                      resp: [8B cid]
//	FnGet      req: [8B key]               resp: [1B found][value]
//	FnPut      req: [8B key][value]        resp: -
//	FnScan     req: [8B startBucket][8B maxRecords]
//	           resp: [8B count][8B valSize] then count × ([8B key][valSize bytes])
//	FnTakeover req: [8B partition]         resp: -
//	FnStats    req: -                      resp: JSON WorkerStats
//	FnQuit     req: -                      resp: -  (worker then shuts down cleanly)
//
// Failures (unknown key partition ownership, takeover refusal, store
// errors) travel back as netrpc error frames and surface from Conn methods
// as *netrpc.ServerError.
const (
	FnPing uint64 = iota + 1
	FnGet
	FnPut
	FnScan
	FnTakeover
	FnStats
	FnQuit
)

// maxScanRecords caps one FnScan response so a single frame stays well
// under netrpc's MaxPayload regardless of what the client asks for.
const maxScanRecords = 4096

func u64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }

func reqError(fn uint64, want int, got int) error {
	return fmt.Errorf("serving: fn %d: request needs %d bytes, got %d", fn, want, got)
}
