//go:build unix

package serving_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/netrpc"
	"repro/internal/serving"
	"repro/internal/shm"
)

// TestServingCrossProcess is the serving tier's acceptance story across
// real OS processes: worker children (this test binary re-exec'd) attach
// the same mmap pool file and serve over loopback TCP, the driver runs
// zipfian traffic against them, one child is SIGKILLed mid-stream, the
// monitor in THIS process detects the frozen heartbeat through the shared
// file and recovers the slot, a surviving child steals the dead writer's
// partition, and the run ends with zero survivor errors, zero lost
// writes, and a clean fsck.
func TestServingCrossProcess(t *testing.T) {
	if os.Getenv("CXLSHM_SERVING_HELPER") == "1" {
		t.Skip("helper mode is driven by the parent test")
	}
	if testing.Short() {
		t.Skip("cross-process chaos in -short mode")
	}

	cfg := serving.ChaosConfig{
		Workers:    3,
		Keys:       5_000,
		ValSize:    48,
		WriteRatio: 0.3,
		Zipf:       0.9,
		Conns:      4,
		OpsPerConn: 4_000,
		ScanEvery:  64,
		ScanSpan:   32,
		Seed:       7,
		Kill:       true,
		Net:        netrpc.Config{ReadTimeout: 15 * time.Second, WriteTimeout: 15 * time.Second},
	}
	path := filepath.Join(t.TempDir(), "pool.cxl")
	p, err := shm.NewPool(shm.Config{Geometry: serving.SizeGeometry(cfg), File: path})
	if err != nil {
		t.Fatal(err)
	}
	defer p.CloseDevice()

	spawn := serving.ExecSpawner(cfg.Net, func(idx int) *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run", "^TestServingWorkerHelper$", "-test.v")
		cmd.Env = append(os.Environ(),
			"CXLSHM_SERVING_HELPER=1",
			"CXLSHM_SERVING_POOL="+path,
			"CXLSHM_SERVING_PARTITION="+strconv.Itoa(idx),
		)
		return cmd
	})

	res, err := serving.RunChaos(p, spawn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ops=%d (%.0f/s) detect→recovered=%v disruption=%v victimErrs=%d stalled=%d rerouted=%d",
		res.Ops, res.OpsPerSec, time.Duration(res.DetectToRecoveredNS),
		time.Duration(res.DisruptionNS), res.VictimErrors, res.StalledWrites, res.Rerouted)

	if !res.Killed {
		t.Fatal("no worker was killed")
	}
	if res.SurvivorErrors != 0 {
		t.Errorf("survivors errored %d times, want 0", res.SurvivorErrors)
	}
	if res.LostWrites != 0 {
		t.Errorf("%d writes lost across the failover, want 0", res.LostWrites)
	}
	if res.Corruptions != 0 {
		t.Errorf("%d corrupt reads, want 0", res.Corruptions)
	}
	if res.DetectToRecoveredNS <= 0 {
		t.Error("no detect→recovered SLO measured for the SIGKILLed worker")
	}
	if slo := time.Duration(res.DetectToRecoveredNS); slo > 10*time.Second {
		t.Errorf("detect→recovered %v, want under the 10s SLO ceiling", slo)
	}
	if res.TimelineDetectToRecNS <= 0 {
		t.Error("pool telemetry carries no timeline for the victim")
	}
	if !res.FsckClean {
		t.Errorf("pool not fsck-clean after cross-process chaos (%d issues)", res.FsckIssues)
	}
}

// TestServingWorkerHelper is the child half of TestServingCrossProcess: a
// worker process that attaches the shared pool file, serves its partition,
// and parks until FnQuit or SIGKILL.
func TestServingWorkerHelper(t *testing.T) {
	if os.Getenv("CXLSHM_SERVING_HELPER") != "1" {
		t.Skip("helper process for TestServingCrossProcess")
	}
	part, err := strconv.Atoi(os.Getenv("CXLSHM_SERVING_PARTITION"))
	if err != nil {
		t.Fatal(err)
	}
	w, err := serving.StartWorkerFile(os.Getenv("CXLSHM_SERVING_POOL"), serving.WorkerConfig{
		Partitions: []int{part},
		Net:        netrpc.Config{ReadTimeout: 15 * time.Second, WriteTimeout: 15 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(serving.ReadyLine(w.Addr(), w.CID()))
	select {
	case <-w.QuitRequested():
		w.Stop()
	case <-time.After(60 * time.Second):
		// Orphan guard only; the parent either quits or kills us.
		w.Stop()
	}
}
