// Package layout defines the on-device layout of the CXL-SHM shared memory
// pool: word packings for object headers, RootRefs and segment metadata, the
// size-class table, and the geometry that maps word addresses to segments,
// pages and blocks (paper Figure 3 and Figure 4(b)).
package layout

import "repro/internal/cxl"

// Addr is re-exported so higher layers can use layout.Addr throughout.
type Addr = cxl.Addr

// WordBytes is the size of a device word.
const WordBytes = cxl.WordBytes

// Object header word (paper Figure 4(b)): a single 64-bit word holding
//
//	[63:48] lcid    — ID of the last client that committed a refcount CAS
//	[47:16] lera    — that client's era at the commit
//	[15:0]  ref_cnt — the object's reference count
//
// The paper packs these fields into one cache line so a single CAS covers
// all three; packing them in one word gives the same commit-point semantics
// with CompareAndSwapUint64. Eras are therefore 32-bit (wrapping after 4G
// transactions per client, the same practical caveat as the paper's packed
// header) and an object supports at most 65535 concurrent references.
const (
	MaxRefCount = 1<<16 - 1
	MaxEra      = 1<<32 - 1
	MaxLCID     = 1<<16 - 1
)

// Header is the unpacked form of an object header word.
type Header struct {
	LCID   uint16
	LEra   uint32
	RefCnt uint16
}

// PackHeader packs h into its word representation.
func PackHeader(h Header) uint64 {
	return uint64(h.LCID)<<48 | uint64(h.LEra)<<16 | uint64(h.RefCnt)
}

// UnpackHeader unpacks a header word.
func UnpackHeader(w uint64) Header {
	return Header{
		LCID:   uint16(w >> 48),
		LEra:   uint32(w >> 16),
		RefCnt: uint16(w),
	}
}

// Block meta word. Every block carries a second metadata word after the
// header word:
//
//	[63:56] flags      — allocation state and kind
//	[55:40] embedCnt   — number of embedded references at the head of the
//	                     data area (paper §5.4); recovery uses it for the
//	                     DFS release of linked objects
//	[39:0]  blockWords — total block size in words including the two
//	                     metadata words (for huge objects this spans
//	                     multiple segments)
const (
	// MetaAllocated marks a block as allocated. A block with the flag clear
	// is free (on a free list, or mid-free).
	MetaAllocated = 1 << 0
	// MetaHuge marks a block occupying one or more whole segments.
	MetaHuge = 1 << 1
	// MetaQueue marks a block holding a transfer queue (§5.2); recovery and
	// the registry sweep recognise queues by this flag.
	MetaQueue = 1 << 2
	// MetaQuarantined marks a block the repairing fsck judged irreparably
	// damaged: it stays flagged allocated so no free list ever hands it out
	// again, but validators exclude it from reference accounting, scans skip
	// it, and its segment is never returned to the free pool while the flag
	// is set. The flag is sticky; only reformatting the pool clears it.
	MetaQuarantined = 1 << 3
)

// MaxEmbedRefs bounds the embedded-reference count storable in the meta word.
const MaxEmbedRefs = 1<<16 - 1

// Meta is the unpacked form of a block meta word.
type Meta struct {
	Flags      uint8
	EmbedCnt   uint16
	BlockWords uint64
}

// PackMeta packs m into its word representation.
func PackMeta(m Meta) uint64 {
	return uint64(m.Flags)<<56 | uint64(m.EmbedCnt)<<40 | (m.BlockWords & (1<<40 - 1))
}

// UnpackMeta unpacks a meta word.
func UnpackMeta(w uint64) Meta {
	return Meta{
		Flags:      uint8(w >> 56),
		EmbedCnt:   uint16(w >> 40),
		BlockWords: w & (1<<40 - 1),
	}
}

// Allocated reports whether the meta word describes an allocated block.
func (m Meta) Allocated() bool { return m.Flags&MetaAllocated != 0 }

// Quarantined reports whether the block was quarantined by the repairing
// fsck.
func (m Meta) Quarantined() bool { return m.Flags&MetaQuarantined != 0 }

// Block layout: [header word][meta word][data words...]. The first EmbedCnt
// data words are embedded references (machine-independent Addrs).
const (
	BlockHeaderWords = 2
	// HeaderOff / MetaOff / DataOff are offsets from the block address.
	HeaderOff = 0
	MetaOff   = 1
	DataOff   = 2
)

// RootRef layout (paper Figure 2, §5.1): 2 words allocated from dedicated
// RootRef-only pages.
//
//	word 0: [63] in_use | [31:0] thread-local reference count
//	word 1: pptr — machine-independent pointer to the referenced CXLObj
const (
	RootRefWords    = 2
	RootRefInUseBit = uint64(1) << 63
	RootRefCntMask  = uint64(1)<<32 - 1
	RootRefPptrOff  = 1
)

// PackRootRef packs the RootRef control word.
func PackRootRef(inUse bool, cnt uint32) uint64 {
	w := uint64(cnt)
	if inUse {
		w |= RootRefInUseBit
	}
	return w
}

// UnpackRootRef unpacks the RootRef control word.
func UnpackRootRef(w uint64) (inUse bool, cnt uint32) {
	return w&RootRefInUseBit != 0, uint32(w & RootRefCntMask)
}

// Segment state word (one entry of the Global Segment Allocation Vec,
// paper Figure 3):
//
//	[63:48] occupied client ID (0 = none)
//	[47:16] version — incremented on every ownership transition, defeating
//	                  ABA on the segment-claim CAS
//	[15:8]  flags   — PotentialLeaking (sticky, §5.3)
//	[7:0]   state
const (
	// SegFree: unowned, contents dead.
	SegFree = 0
	// SegActive: exclusively owned by the client in the cid field.
	SegActive = 1
	// SegAbandoned: owner died; blocks may still be referenced by others.
	// Reclaimed by the asynchronous segment-local scan once quiet.
	SegAbandoned = 2
	// SegHugeHead: first segment of a huge (multi-segment) object.
	SegHugeHead = 3
	// SegHugeBody: continuation segment of a huge object.
	SegHugeBody = 4
)

// SegFlagPotentialLeaking is the sticky POTENTIAL_LEAKING flag (§5.3): set
// when recovery replays a release that reached refcount zero and therefore
// must not redo the (non-idempotent) reclamation.
const SegFlagPotentialLeaking = 1 << 0

// SegState is the unpacked form of a segment state word.
type SegState struct {
	CID     uint16
	Version uint32
	Flags   uint8
	State   uint8
}

// PackSegState packs s into its word representation.
func PackSegState(s SegState) uint64 {
	return uint64(s.CID)<<48 | uint64(s.Version)<<16 | uint64(s.Flags)<<8 | uint64(s.State)
}

// UnpackSegState unpacks a segment state word.
func UnpackSegState(w uint64) SegState {
	return SegState{
		CID:     uint16(w >> 48),
		Version: uint32(w >> 16),
		Flags:   uint8(w >> 8),
		State:   uint8(w),
	}
}

// Page meta words (stored in the segment header, one meta per page):
//
//	word 0: [63:56] kind | [55:32] used count | [31:0] size class index
//	word 1: free — address of first free block (intrusive list head)
//	word 2: next free-slot scan position (owner-local bump pointer)
const (
	PageMetaWords = 3

	PageKindUnused  = 0
	PageKindNormal  = 1
	PageKindRootRef = 2
	// PageKindQuarantined marks a page whose metadata the repairing fsck
	// could not reconstruct (e.g. an unrecognizable size class): the page's
	// contents are written off, allocators and scans must not touch it, and
	// references into it are reported as quarantined rather than wild.
	PageKindQuarantined = 3
)

// PageMeta is the unpacked form of page meta word 0.
type PageMeta struct {
	Kind      uint8
	Used      uint32 // allocated block count (owner-maintained)
	SizeClass uint32
}

// PackPageMeta packs p into page meta word 0.
func PackPageMeta(p PageMeta) uint64 {
	return uint64(p.Kind)<<56 | uint64(p.Used&0xffffff)<<32 | uint64(p.SizeClass)
}

// UnpackPageMeta unpacks page meta word 0.
func UnpackPageMeta(w uint64) PageMeta {
	return PageMeta{
		Kind:      uint8(w >> 56),
		Used:      uint32(w>>32) & 0xffffff,
		SizeClass: uint32(w),
	}
}

// Client status values (stored in each ClientLocalState).
const (
	ClientSlotFree  = 0
	ClientAlive     = 1
	ClientDead      = 2 // declared failed, recovery pending or running
	ClientRecovered = 3 // recovery completed; slot reusable
)
