package layout

import "repro/internal/obs"

// The telemetry region is the crash-surviving observability area of the
// pool: per-client metric blocks, a pool-wide metric block, per-client
// recovery timelines, and a shared recovery-event ring. It lives in the
// pool words themselves (after the segments area, so every pre-telemetry
// address is unchanged), which means it shares the device's failure
// domain — a client's last published counters and the timeline of its
// death survive a kill -9 of any process, and any process mapping the
// pool (read-only included) can read them.
//
// Region layout, relative to Geometry.TelemetryBase:
//
//	word 0                      TelMagic
//	word 1                      obs.NumCounters at format time
//	word 2                      obs.NumHistos at format time
//	word 3                      obs.HistBuckets at format time
//	word 4                      event-ring capacity (records)
//	word 5                      event-ring next sequence (CAS fetch-add)
//	word 6                      timeline words per client
//	word 7                      reserved
//	word 8..                    MaxClients timeline blocks × TelTimelineWords
//	...                         MaxClients+1 metric blocks × TelBlockWords
//	                            (block 0 = pool block, 1..MaxClients = clients)
//	...                         ring: TelRingRecords records × TelRecordWords
//
// Each metric block (TelBlockWords):
//
//	word 0                      commit word: pubCount<<1 | activeSlot
//	                            (0 = never published)
//	word 1                      writer identity (OS pid)
//	word 2..7                   reserved
//	word 8                      slot 0
//	word 8+TelSlotWords         slot 1
//
// Each slot (TelSlotWords):
//
//	word 0                      publish time (unix nanoseconds)
//	word 1                      reserved
//	word 2..                    obs.NumCounters counter words
//	...                         obs.NumHistos × obs.HistBuckets bucket words
//
// Publication is double-buffered: the writer fills the inactive slot and
// flips the commit word last, so a crash mid-publication leaves the
// previously committed slot intact — the seqlock can never destroy the
// last stable vector. The pool block is the exception: it has multiple
// writers across processes, so its slot-0 words are CAS-added in place
// (each word individually monotonic; its commit word stays 0).
//
// Each timeline block (TelTimelineWords) records one client slot's most
// recent death and recovery, stamped by whoever fences/recovers:
//
//	word 0                      death seqlock: bumped to odd at fence
//	                            reset, even when the reset is complete;
//	                            value/2 counts deaths on this slot
//	word 1                      first missed heartbeat (unix ns, 0=unknown)
//	word 2                      fenced at (unix ns)
//	word 3                      fence reason (obs.FenceReason)
//	word 4                      latest recovery attempt started (unix ns)
//	word 5                      recovery attempts for this death
//	word 6                      redo replays for this death
//	word 7                      recovered at (unix ns, 0 until recovered)
//	word 8                      detect→recovered duration (ns)
//	word 9                      completed recoveries on this slot (all deaths)
//	word 10                     blocks reclaimed by the last recovery
//	word 11                     roots swept by the last recovery
//	word 12..15                 reserved
//
// Each ring record (TelRecordWords) is one mirrored recovery-lifecycle
// event, claimed by CAS fetch-add on the ring-sequence header word:
//
//	word 0                      commit: sequence+1, written last (0=empty)
//	word 1                      event time (unix ns)
//	word 2                      obs.EventType
//	word 3                      client
//	word 4                      segment
//	word 5                      detail A
//	word 6                      detail B
//	word 7                      reserved
const (
	// TelMagic tags a formatted telemetry region ("CXLTEL1" little-endian).
	TelMagic = 0x314C45544C5843

	TelHeaderWords   = 8
	TelTimelineWords = 16
	TelRecordWords   = 8
	// TelRingRecords is the shared recovery-event ring capacity. Fixed:
	// it is part of the layout, and 256 records of rare lifecycle events
	// cover many deaths of forensic history.
	TelRingRecords = 256
	// telBlockHdrWords is the metric-block header (commit + identity + pad).
	telBlockHdrWords = 8
)

// Telemetry header word offsets (relative to TelemetryBase).
const (
	TelOffMagic         = 0
	TelOffNumCounters   = 1
	TelOffNumHistos     = 2
	TelOffHistBuckets   = 3
	TelOffRingCap       = 4
	TelOffRingSeq       = 5
	TelOffTimelineWords = 6
)

// Metric-block word offsets (relative to TelBlockBase).
const (
	TelBlockOffCommit   = 0
	TelBlockOffIdentity = 1
)

// Metric-slot word offsets (relative to TelSlotBase).
const (
	TelSlotOffTime     = 0
	TelSlotOffCounters = 2
)

// Timeline word offsets (relative to TelTimelineBase).
const (
	TlOffDeathSeq  = 0
	TlOffFirstMiss = 1
	TlOffFenced    = 2
	TlOffReason    = 3
	TlOffAttempt   = 4
	TlOffAttempts  = 5
	TlOffReplays   = 6
	TlOffRecovered = 7
	TlOffDuration  = 8
	TlOffCompleted = 9
	TlOffReclaimed = 10
	TlOffSwept     = 11
)

// Ring-record word offsets (relative to TelRingRecordBase).
const (
	TelRecOffCommit  = 0
	TelRecOffTime    = 1
	TelRecOffType    = 2
	TelRecOffClient  = 3
	TelRecOffSegment = 4
	TelRecOffA       = 5
	TelRecOffB       = 6
)

// telSlotWords computes the per-slot word count for this build's obs
// dimensions, cache-line aligned.
func telSlotWords() uint64 {
	n := uint64(TelSlotOffCounters) + uint64(obs.NumCounters) + uint64(obs.NumHistos)*uint64(obs.HistBuckets)
	return (n + 7) &^ 7
}

// TelHeaderAddr returns the address of telemetry header word off.
func (g *Geometry) TelHeaderAddr(off int) Addr { return g.TelemetryBase + Addr(off) }

// TelRingSeqAddr returns the address of the ring's next-sequence word.
func (g *Geometry) TelRingSeqAddr() Addr { return g.TelemetryBase + TelOffRingSeq }

// TelTimelineBase returns the base of client cid's recovery timeline
// block (cid is 1-based).
func (g *Geometry) TelTimelineBase(cid int) Addr {
	return g.TelemetryBase + TelHeaderWords + Addr((cid-1)*TelTimelineWords)
}

// TelBlockBase returns the base of metric block idx: 0 is the pool
// block, 1..MaxClients are the per-client blocks.
func (g *Geometry) TelBlockBase(idx int) Addr {
	return g.TelemetryBase + TelHeaderWords +
		Addr(g.MaxClients*TelTimelineWords) + Addr(uint64(idx)*g.TelBlockWords)
}

// TelSlotBase returns the base of slot s (0 or 1) of metric block idx.
func (g *Geometry) TelSlotBase(idx, s int) Addr {
	return g.TelBlockBase(idx) + telBlockHdrWords + Addr(uint64(s)*g.TelSlotWords)
}

// TelRingRecordBase returns the base of ring record i.
func (g *Geometry) TelRingRecordBase(i int) Addr {
	return g.TelBlockBase(g.MaxClients+1) + Addr(i*TelRecordWords)
}

// telemetryWords returns the whole region's size for this geometry.
func (g *Geometry) telemetryWords() uint64 {
	return TelHeaderWords +
		uint64(g.MaxClients)*TelTimelineWords +
		uint64(g.MaxClients+1)*g.TelBlockWords +
		TelRingRecords*TelRecordWords
}
