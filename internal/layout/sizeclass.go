package layout

// Size classes. As in mimalloc, each page is dedicated to one size class and
// carved into fixed-size blocks. CXL-SHM's smallest class holds 16 bytes of
// data because every object carries a header (paper §3.3); with our 2-word
// header the smallest block is 4 words.
//
// Classes progress in mimalloc style: within each power-of-two bracket the
// data size grows in four linear steps, bounding internal fragmentation at
// ~25%.

// SizeClass describes one class.
type SizeClass struct {
	Index      int
	DataBytes  int    // usable payload bytes
	BlockWords uint64 // total block size in words, including the 2 meta words
}

// BuildSizeClasses generates the class table for pages of pageWords words.
// The largest class is the biggest that still fits at least one block in a
// page.
func BuildSizeClasses(pageWords uint64) []SizeClass {
	payloadBytes := int(pageWords) * WordBytes
	var classes []SizeClass
	add := func(dataBytes int) {
		bw := uint64(BlockHeaderWords) + uint64((dataBytes+WordBytes-1)/WordBytes)
		if int(bw)*WordBytes > payloadBytes {
			return
		}
		classes = append(classes, SizeClass{
			Index:      len(classes),
			DataBytes:  dataBytes,
			BlockWords: bw,
		})
	}
	// 16..128 in steps of 16, then four steps per power-of-two bracket.
	for sz := 16; sz <= 128; sz += 16 {
		add(sz)
	}
	for base := 128; ; base *= 2 {
		step := base / 4
		stop := false
		for i := 1; i <= 4; i++ {
			sz := base + i*step
			before := len(classes)
			add(sz)
			if len(classes) == before {
				stop = true
				break
			}
		}
		if stop {
			break
		}
	}
	return classes
}

// ClassIndexFor returns the smallest class whose payload fits dataBytes, or
// -1 if dataBytes exceeds the largest class (the allocation must then take
// the huge-object path).
func ClassIndexFor(classes []SizeClass, dataBytes int) int {
	if dataBytes <= 0 {
		dataBytes = 1
	}
	// Classes are sorted ascending; binary search is overkill for ~40
	// entries but keeps the lookup O(log n) regardless of configuration.
	lo, hi := 0, len(classes)
	for lo < hi {
		mid := (lo + hi) / 2
		if classes[mid].DataBytes < dataBytes {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(classes) {
		return -1
	}
	return lo
}
