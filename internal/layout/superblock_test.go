package layout

import (
	"strings"
	"testing"
)

// wordMem is a minimal in-package word store for superblock tests.
type wordMem []uint64

func (m wordMem) Load(a Addr) uint64     { return m[a] }
func (m wordMem) Store(a Addr, v uint64) { m[a] = v }

func testGeometry(t *testing.T) *Geometry {
	t.Helper()
	geo, err := NewGeometry(GeometryConfig{
		MaxClients: 8, NumSegments: 16, SegmentWords: 1 << 13, PageWords: 1 << 9, MaxQueues: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return geo
}

func TestSuperblockRoundTrip(t *testing.T) {
	geo := testGeometry(t)
	m := make(wordMem, 64)
	WriteSuperblock(m, geo)

	sb := ReadSuperblock(m)
	if err := sb.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	got, err := sb.Geometry()
	if err != nil {
		t.Fatalf("Geometry: %v", err)
	}
	if got.TotalWords != geo.TotalWords || got.MaxClients != geo.MaxClients ||
		got.NumSegments != geo.NumSegments || got.SegmentWords != geo.SegmentWords ||
		got.PageWords != geo.PageWords || got.MaxQueues != geo.MaxQueues {
		t.Fatalf("reconstructed geometry differs: got %+v, want %+v", got, geo)
	}

	// The words form is identical.
	sb2, err := SuperblockFromWords(m)
	if err != nil {
		t.Fatal(err)
	}
	if sb2 != sb {
		t.Fatalf("SuperblockFromWords = %+v, ReadSuperblock = %+v", sb2, sb)
	}
}

func TestSuperblockRejectsBadMagic(t *testing.T) {
	geo := testGeometry(t)
	m := make(wordMem, 64)
	WriteSuperblock(m, geo)
	m[SuperOffMagic] = 0xdeadbeef
	if err := ReadSuperblock(m).Validate(); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: %v", err)
	}
}

func TestSuperblockRejectsVersionMismatch(t *testing.T) {
	geo := testGeometry(t)
	m := make(wordMem, 64)
	WriteSuperblock(m, geo)
	for _, v := range []uint64{0, 1, LayoutVersion + 1} {
		m[SuperOffVersion] = v
		err := ReadSuperblock(m).Validate()
		if err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("version %d: %v", v, err)
		}
	}
}

func TestSuperblockRejectsBadGeometry(t *testing.T) {
	geo := testGeometry(t)
	m := make(wordMem, 64)
	WriteSuperblock(m, geo)
	m[SuperOffSegWords] = 3 // not a power of two
	if _, err := ReadSuperblock(m).Geometry(); err == nil {
		t.Fatal("invalid geometry must be rejected")
	}
}

func TestSuperblockFromShortImage(t *testing.T) {
	if _, err := SuperblockFromWords(make([]uint64, 4)); err == nil {
		t.Fatal("short image must be rejected")
	}
}
