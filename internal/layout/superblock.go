package layout

import "fmt"

// The pool superblock is the self-describing header every attach validates:
// magic, the five geometry parameters, and the layout version. It lives in
// the reserved low words of the pool (see Geometry), so it travels with the
// pool itself — inside a MapDevice file, a snapshot image, or a live heap
// device — and a process attaching a pool formatted by another process (or
// another build) can reconstruct the exact geometry or fail loudly instead
// of silently attaching with mismatched MaxClients/segment dimensions.
//
// Word assignments (word 0 is the reserved nil address):
//
//	word 1   PoolMagic
//	word 2   SegmentWords
//	word 3   PageWords
//	word 4   NumSegments
//	word 5   MaxClients
//	word 6   MaxQueues
//	word 7   global reclamation era (runtime state, not superblock)
//	word 8   free-segment hint (runtime state, not superblock)
//	word 9   LayoutVersion
const (
	SuperOffMagic      = Addr(1)
	SuperOffSegWords   = Addr(2)
	SuperOffPageWords  = Addr(3)
	SuperOffNumSegs    = Addr(4)
	SuperOffMaxClients = Addr(5)
	SuperOffMaxQueues  = Addr(6)
	SuperOffVersion    = Addr(9)
)

// LayoutVersion identifies the pool word layout this build formats and
// understands. Bump it whenever the meaning or placement of any shared
// word changes (geometry derivation, metadata packing, redo format...):
// attaching a pool with a different version is memory corruption waiting
// to happen, so every attach path refuses on mismatch.
//
// Version history:
//
//	1  implicit (pre-superblock pools: no version word, word 9 reads 0)
//	2  versioned superblock introduced
//	3  crash-surviving telemetry region appended after the segments area
//	   (per-client metric blocks, recovery timelines, shared event ring)
//	4  quarantine markers (MetaQuarantined block flag, PageKindQuarantined)
//	   written by the repairing fsck, plus repair counters growing the
//	   telemetry metric slots
//	5  repacked redo-log entry (era and saved count fold into the commit
//	   word; 5 words instead of 7) with deferred invalidation, plus
//	   publication-burst counters/histogram growing the telemetry slots
//	6  slot-lease area (free-slot bitmap + per-slot lease-generation
//	   words) inserted between the pool header and the Global Segment
//	   Allocation Vec; every region after word 16 moved
const LayoutVersion = 6

// Superblock is the decoded pool header.
type Superblock struct {
	Magic        uint64
	SegmentWords uint64
	PageWords    uint64
	NumSegments  int
	MaxClients   int
	MaxQueues    int
	Version      uint64
}

// wordLoader reads pool words; cxl.Memory satisfies it.
type wordLoader interface{ Load(Addr) uint64 }

// wordStorer writes pool words; cxl.Memory satisfies it.
type wordStorer interface{ Store(Addr, uint64) }

// superblockWords is the minimum pool size that can hold a superblock.
const superblockWords = 16

// ReadSuperblock decodes the superblock from a live memory backend.
func ReadSuperblock(m wordLoader) Superblock {
	return Superblock{
		Magic:        m.Load(SuperOffMagic),
		SegmentWords: m.Load(SuperOffSegWords),
		PageWords:    m.Load(SuperOffPageWords),
		NumSegments:  int(m.Load(SuperOffNumSegs)),
		MaxClients:   int(m.Load(SuperOffMaxClients)),
		MaxQueues:    int(m.Load(SuperOffMaxQueues)),
		Version:      m.Load(SuperOffVersion),
	}
}

// SuperblockFromWords decodes the superblock from a raw word image
// (snapshot files).
func SuperblockFromWords(words []uint64) (Superblock, error) {
	if len(words) < superblockWords {
		return Superblock{}, fmt.Errorf("layout: image of %d words cannot hold a pool superblock", len(words))
	}
	return Superblock{
		Magic:        words[SuperOffMagic],
		SegmentWords: words[SuperOffSegWords],
		PageWords:    words[SuperOffPageWords],
		NumSegments:  int(words[SuperOffNumSegs]),
		MaxClients:   int(words[SuperOffMaxClients]),
		MaxQueues:    int(words[SuperOffMaxQueues]),
		Version:      words[SuperOffVersion],
	}, nil
}

// WriteSuperblock encodes g's superblock into m (pool formatting).
func WriteSuperblock(m wordStorer, g *Geometry) {
	m.Store(SuperOffMagic, PoolMagic)
	m.Store(SuperOffSegWords, g.SegmentWords)
	m.Store(SuperOffPageWords, g.PageWords)
	m.Store(SuperOffNumSegs, uint64(g.NumSegments))
	m.Store(SuperOffMaxClients, uint64(g.MaxClients))
	m.Store(SuperOffMaxQueues, uint64(g.MaxQueues))
	m.Store(SuperOffVersion, LayoutVersion)
}

// Validate checks that the superblock was written by a compatible build:
// right magic, exactly this build's layout version. It reports clear,
// actionable errors — a mismatched pool must never be attached.
func (sb Superblock) Validate() error {
	if sb.Magic != PoolMagic {
		return fmt.Errorf("layout: not a formatted CXL-SHM pool (magic %#x, want %#x)", sb.Magic, PoolMagic)
	}
	if sb.Version != LayoutVersion {
		return fmt.Errorf("layout: pool has layout version %d, this build requires %d — "+
			"re-create the pool or use a matching build", sb.Version, LayoutVersion)
	}
	return nil
}

// Geometry validates the superblock and reconstructs the pool geometry it
// describes. Geometry parameters that cannot produce a valid layout are
// rejected with the underlying geometry error.
func (sb Superblock) Geometry() (*Geometry, error) {
	if err := sb.Validate(); err != nil {
		return nil, err
	}
	geo, err := NewGeometry(GeometryConfig{
		SegmentWords: sb.SegmentWords,
		PageWords:    sb.PageWords,
		NumSegments:  sb.NumSegments,
		MaxClients:   sb.MaxClients,
		MaxQueues:    sb.MaxQueues,
	})
	if err != nil {
		return nil, fmt.Errorf("layout: pool superblock describes an invalid geometry: %w", err)
	}
	return geo, nil
}
