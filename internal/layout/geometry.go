package layout

import "fmt"

// Geometry fixes the layout of the shared pool (paper Figure 3):
//
//	word 0                      nil address (reserved)
//	word 1                      magic
//	word 2..6                   geometry summary (for cross-checking)
//	word 7                      global reclamation era
//	word 8                      free-segment hint (SegFreeHintWord)
//	word 9..15                  reserved
//	SlotMapBase..               free-slot bitmap (1 bit per client slot,
//	                            bit set = slot claimable; accelerator only,
//	                            the status word stays authoritative)
//	SlotGenBase..               per-slot lease generation words
//	                            (odd = leased ALIVE/DEAD, even = FREE or
//	                            RECOVERED; bumped once per transition)
//	SegVecBase..                Global Segment Allocation Vec
//	                            (2 words per segment: state, client_free)
//	ClientVecBase..             Global Client Local Vec
//	                            (ClientStateWords per client)
//	QueueRegBase..              queue registry (1 word per slot)
//	SegmentsBase..              NumSegments segments of SegmentWords each
//	TelemetryBase..             crash-surviving telemetry region
//	                            (telemetry.go: metric blocks, recovery
//	                            timelines, shared event ring)
//
// Each segment:
//
//	word 0                      next unclaimed page index (owner bump ptr)
//	word 1                      reserved
//	word 2..                    PageMetaWords per page
//	(padded to SegHeaderWords)
//	pages                       PagesPerSegment pages of PageWords each
//
// Each client's ClientLocalState:
//
//	word 0                      status (ClientSlotFree/Alive/Dead/Recovered)
//	word 1                      heartbeat counter
//	word 2                      machine/process identity tag
//	word 3                      reserved
//	word 4..4+RedoWords         redo log area (one era-transaction entry)
//	word 12..12+MaxClients      era row: Era[cid][1..MaxClients]
type Geometry struct {
	MaxClients  int
	NumSegments int
	MaxQueues   int

	SegmentWords    uint64
	PageWords       uint64
	PagesPerSegment int
	SegHeaderWords  uint64

	RedoWords        int
	ClientStateWords uint64

	// SlotMapBase is the free-slot bitmap: SlotMapWords words, one bit per
	// client slot (bit for cid at word (cid-1)/64, bit (cid-1)%64). A set
	// bit means "probably claimable" — Connect uses it to find a candidate
	// in O(1) device reads instead of an O(M) status scan. The status word
	// is authoritative; stale bits are self-healed by claimers and the
	// monitor's reconcile duty.
	SlotMapBase  Addr
	SlotMapWords uint64
	// SlotGenBase holds one lease-generation word per client slot. The
	// generation is bumped to odd when the slot is leased (Connect) and to
	// even when the lease is released (recovery completing, or format).
	// Parity invariant: ALIVE/DEAD ⇒ odd, FREE/RECOVERED ⇒ even.
	SlotGenBase   Addr
	SegVecBase    Addr
	ClientVecBase Addr
	QueueRegBase  Addr
	RootDirBase   Addr
	SegmentsBase  Addr
	// TelemetryBase is the crash-surviving telemetry region (telemetry.go),
	// placed after the segments so all other addresses are unaffected.
	TelemetryBase Addr
	// TelSlotWords/TelBlockWords size one metric slot / double-buffered
	// metric block, derived from the obs counter and histogram dimensions.
	TelSlotWords  uint64
	TelBlockWords uint64
	TotalWords    uint64

	Classes []SizeClass
}

// MaxNamedRoots is the size of the named-root directory: well-known
// reference slots that keep data alive across client lifetimes (the paper's
// §6.4 "persistent root objects ... special API").
const MaxNamedRoots = 32

// Fixed per-client state offsets (within a ClientLocalState).
const (
	ClientOffStatus    = 0
	ClientOffHeartbeat = 1
	ClientOffIdentity  = 2
	ClientOffReserved  = 3
	ClientOffRedo      = 4
	clientFixedWords   = 12 // status..reserved + redo area (RedoWords=8)
)

// DefaultRedoWords is the size of the per-client redo log area. One era
// transaction needs at most 8 words (see internal/shm's redo layout).
const DefaultRedoWords = 8

// PoolMagic identifies an initialized CXL-SHM pool.
const PoolMagic = 0xC1525348 // "CXL-SHM" truncated tag

// GeometryConfig selects pool dimensions. Zero fields take defaults sized
// for tests and laptop-scale benchmarks (the paper's 64 MB segments scale
// down linearly).
type GeometryConfig struct {
	MaxClients   int    // default 32
	NumSegments  int    // default 64
	SegmentWords uint64 // default 1<<16 words (512 KiB)
	PageWords    uint64 // default 1<<12 words (32 KiB)
	MaxQueues    int    // default 128
}

// NewGeometry validates cfg and computes the derived layout.
func NewGeometry(cfg GeometryConfig) (*Geometry, error) {
	if cfg.MaxClients == 0 {
		cfg.MaxClients = 32
	}
	if cfg.NumSegments == 0 {
		cfg.NumSegments = 64
	}
	if cfg.SegmentWords == 0 {
		cfg.SegmentWords = 1 << 16
	}
	if cfg.PageWords == 0 {
		cfg.PageWords = 1 << 12
	}
	if cfg.MaxQueues == 0 {
		cfg.MaxQueues = 128
	}
	if cfg.MaxClients < 1 || cfg.MaxClients > MaxLCID {
		return nil, fmt.Errorf("layout: MaxClients %d out of range [1,%d]", cfg.MaxClients, MaxLCID)
	}
	if cfg.PageWords < 64 {
		return nil, fmt.Errorf("layout: PageWords %d too small (min 64)", cfg.PageWords)
	}
	if cfg.SegmentWords < cfg.PageWords*2 {
		return nil, fmt.Errorf("layout: SegmentWords %d must hold at least two pages of %d words",
			cfg.SegmentWords, cfg.PageWords)
	}

	g := &Geometry{
		MaxClients:   cfg.MaxClients,
		NumSegments:  cfg.NumSegments,
		MaxQueues:    cfg.MaxQueues,
		SegmentWords: cfg.SegmentWords,
		PageWords:    cfg.PageWords,
		RedoWords:    DefaultRedoWords,
	}
	g.ClientStateWords = clientFixedWords + uint64(g.MaxClients) + 1

	// Pages per segment: solve fixed(2) + PageMetaWords*p + pad <= seg - p*page.
	p := int((g.SegmentWords - 2) / (g.PageWords + PageMetaWords))
	for p > 0 {
		hdr := uint64(2 + PageMetaWords*p)
		hdr = (hdr + 7) &^ 7 // align to cache line
		if hdr+uint64(p)*g.PageWords <= g.SegmentWords {
			g.PagesPerSegment = p
			g.SegHeaderWords = hdr
			break
		}
		p--
	}
	if g.PagesPerSegment < 1 {
		return nil, fmt.Errorf("layout: segment of %d words cannot hold a page of %d words",
			g.SegmentWords, g.PageWords)
	}

	base := Addr(16) // word 0 nil, 1..7 magic+geometry, 8 seg hint, 9..15 reserved
	g.SlotMapBase = base
	g.SlotMapWords = (uint64(g.MaxClients) + 63) / 64
	base += Addr(g.SlotMapWords)
	g.SlotGenBase = base
	base += Addr(uint64(g.MaxClients))
	g.SegVecBase = base
	base += Addr(2 * g.NumSegments)
	g.ClientVecBase = base
	base += Addr(uint64(g.MaxClients) * g.ClientStateWords)
	g.QueueRegBase = base
	base += Addr(g.MaxQueues)
	g.RootDirBase = base
	base += MaxNamedRoots
	base = (base + 7) &^ 7
	g.SegmentsBase = base
	g.TelemetryBase = base + Addr(uint64(g.NumSegments)*g.SegmentWords)
	g.TelSlotWords = telSlotWords()
	g.TelBlockWords = telBlockHdrWords + 2*g.TelSlotWords
	g.TotalWords = uint64(g.TelemetryBase) + g.telemetryWords()

	g.Classes = BuildSizeClasses(g.PageWords)
	return g, nil
}

// SegFreeHintWord is the pool-header word holding the shared free-segment
// hint: index+1 of a segment recently returned to the free pool, 0 when there
// is no hint. Purely an accelerator for claim-time scans — any value (stale,
// lost, zero) is correct, so writers may race and fenced writers may drop it.
const SegFreeHintWord = Addr(8)

// SegFreeHintAddr returns the address of the free-segment hint word.
func (g *Geometry) SegFreeHintAddr() Addr { return SegFreeHintWord }

// --- Slot-lease area ---

// SlotMapAddr returns the address of free-slot bitmap word w
// (w in [0, SlotMapWords)).
func (g *Geometry) SlotMapAddr(w int) Addr { return g.SlotMapBase + Addr(w) }

// SlotMapBit locates cid's bit in the free-slot bitmap: the bitmap word
// address and the single-bit mask within it. cid is 1-based.
func (g *Geometry) SlotMapBit(cid int) (Addr, uint64) {
	return g.SlotMapBase + Addr((cid-1)/64), 1 << uint((cid-1)%64)
}

// SlotGenAddr returns the address of cid's lease-generation word.
// cid is 1-based.
func (g *Geometry) SlotGenAddr(cid int) Addr { return g.SlotGenBase + Addr(cid-1) }

// --- Global Segment Allocation Vec ---

// SegStateAddr returns the address of segment i's state word.
func (g *Geometry) SegStateAddr(i int) Addr { return g.SegVecBase + Addr(2*i) }

// SegClientFreeAddr returns the address of segment i's client_free list head
// (cross-client deferred frees, paper Figure 3).
func (g *Geometry) SegClientFreeAddr(i int) Addr { return g.SegVecBase + Addr(2*i) + 1 }

// --- Client Local Vec ---

// ClientStateBase returns the base of client cid's ClientLocalState.
// cid is 1-based.
func (g *Geometry) ClientStateBase(cid int) Addr {
	return g.ClientVecBase + Addr(uint64(cid-1)*g.ClientStateWords)
}

// ClientStatusAddr returns the address of cid's status word.
func (g *Geometry) ClientStatusAddr(cid int) Addr {
	return g.ClientStateBase(cid) + ClientOffStatus
}

// ClientHeartbeatAddr returns the address of cid's heartbeat counter.
func (g *Geometry) ClientHeartbeatAddr(cid int) Addr {
	return g.ClientStateBase(cid) + ClientOffHeartbeat
}

// ClientRedoBase returns the base of cid's redo log area.
func (g *Geometry) ClientRedoBase(cid int) Addr {
	return g.ClientStateBase(cid) + ClientOffRedo
}

// EraAddr returns the address of Era[i][j]: the largest era of client j seen
// by client i (Era[i][i] is i's own current era). Row i lives in client i's
// ClientLocalState and is written only by client i (paper Figure 4(a)).
func (g *Geometry) EraAddr(i, j int) Addr {
	return g.ClientStateBase(i) + clientFixedWords + Addr(j)
}

// --- Queue registry ---

// QueueRegAddr returns the address of registry slot i (holds the block
// address of a live transfer queue, or 0).
func (g *Geometry) QueueRegAddr(i int) Addr { return g.QueueRegBase + Addr(i) }

// RootDirAddr returns the address of named-root slot i. Each slot is a
// counted reference word (single-writer: whoever publishes/unpublishes).
func (g *Geometry) RootDirAddr(i int) Addr { return g.RootDirBase + Addr(i) }

// --- Segments, pages, blocks ---

// SegmentBase returns the base address of segment i.
func (g *Geometry) SegmentBase(i int) Addr {
	return g.SegmentsBase + Addr(uint64(i)*g.SegmentWords)
}

// SegmentIndexOf maps an address inside the segments area to its segment
// index, or -1 for addresses outside it.
func (g *Geometry) SegmentIndexOf(a Addr) int {
	if a < g.SegmentsBase || a >= g.TelemetryBase {
		return -1
	}
	return int((a - g.SegmentsBase) / Addr(g.SegmentWords))
}

// SegNextPageAddr returns the address of segment i's next-unclaimed-page
// counter (owner-only).
func (g *Geometry) SegNextPageAddr(i int) Addr { return g.SegmentBase(i) }

// PageMetaAddr returns the address of page p's meta area in segment s.
func (g *Geometry) PageMetaAddr(s, p int) Addr {
	return g.SegmentBase(s) + 2 + Addr(PageMetaWords*p)
}

// PageBase returns the base address of page p in segment s.
func (g *Geometry) PageBase(s, p int) Addr {
	return g.SegmentBase(s) + Addr(g.SegHeaderWords) + Addr(uint64(p)*g.PageWords)
}

// PageIndexOf maps an address inside segment s to a page index, or -1 if it
// falls in the segment header.
func (g *Geometry) PageIndexOf(s int, a Addr) int {
	off := a - g.SegmentBase(s)
	if off < Addr(g.SegHeaderWords) {
		return -1
	}
	p := int((off - Addr(g.SegHeaderWords)) / Addr(g.PageWords))
	if p >= g.PagesPerSegment {
		return -1
	}
	return p
}

// BlocksPerPage returns how many blocks of class c fit in one page.
func (g *Geometry) BlocksPerPage(c SizeClass) int {
	return int(g.PageWords / c.BlockWords)
}

// RootRefsPerPage returns how many RootRef slots fit in one RootRef page.
func (g *Geometry) RootRefsPerPage() int { return int(g.PageWords / RootRefWords) }
