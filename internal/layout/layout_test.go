package layout

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHeaderPackRoundTrip(t *testing.T) {
	f := func(lcid uint16, lera uint32, cnt uint16) bool {
		h := Header{LCID: lcid, LEra: lera, RefCnt: cnt}
		return UnpackHeader(PackHeader(h)) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMetaPackRoundTrip(t *testing.T) {
	f := func(flags uint8, embed uint16, words uint64) bool {
		m := Meta{Flags: flags, EmbedCnt: embed, BlockWords: words & (1<<40 - 1)}
		return UnpackMeta(PackMeta(m)) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMetaAllocatedFlag(t *testing.T) {
	m := Meta{Flags: MetaAllocated | MetaQueue, EmbedCnt: 3, BlockWords: 10}
	if !m.Allocated() {
		t.Fatal("MetaAllocated flag not detected")
	}
	m.Flags = MetaHuge
	if m.Allocated() {
		t.Fatal("Allocated() true without MetaAllocated")
	}
}

func TestRootRefPackRoundTrip(t *testing.T) {
	f := func(inUse bool, cnt uint32) bool {
		gotUse, gotCnt := UnpackRootRef(PackRootRef(inUse, cnt))
		return gotUse == inUse && gotCnt == cnt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSegStatePackRoundTrip(t *testing.T) {
	f := func(cid uint16, ver uint32, flags, state uint8) bool {
		s := SegState{CID: cid, Version: ver, Flags: flags, State: state}
		return UnpackSegState(PackSegState(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPageMetaPackRoundTrip(t *testing.T) {
	f := func(kind uint8, used uint32, class uint32) bool {
		p := PageMeta{Kind: kind, Used: used & 0xffffff, SizeClass: class}
		return UnpackPageMeta(PackPageMeta(p)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSizeClassesAreSortedAndAligned(t *testing.T) {
	classes := BuildSizeClasses(1 << 12)
	if len(classes) == 0 {
		t.Fatal("no size classes")
	}
	if classes[0].DataBytes != 16 {
		t.Fatalf("smallest class = %d bytes, want 16 (paper §3.3)", classes[0].DataBytes)
	}
	for i, c := range classes {
		if c.Index != i {
			t.Fatalf("class %d has Index %d", i, c.Index)
		}
		if i > 0 && classes[i-1].DataBytes >= c.DataBytes {
			t.Fatalf("classes not strictly ascending at %d", i)
		}
		wantWords := uint64(BlockHeaderWords + (c.DataBytes+7)/8)
		if c.BlockWords != wantWords {
			t.Fatalf("class %d: BlockWords=%d want %d", i, c.BlockWords, wantWords)
		}
		if c.BlockWords > 1<<12 {
			t.Fatalf("class %d exceeds page size", i)
		}
	}
}

func TestClassIndexForFindsSmallestFit(t *testing.T) {
	classes := BuildSizeClasses(1 << 12)
	for want, c := range classes {
		if got := ClassIndexFor(classes, c.DataBytes); got != want {
			t.Fatalf("exact size %d: class %d, want %d", c.DataBytes, got, want)
		}
		if got := ClassIndexFor(classes, c.DataBytes-1); got != want {
			t.Fatalf("size %d: class %d, want %d", c.DataBytes-1, got, want)
		}
	}
	last := classes[len(classes)-1]
	if got := ClassIndexFor(classes, last.DataBytes+1); got != -1 {
		t.Fatalf("oversize request got class %d, want -1 (huge path)", got)
	}
	if got := ClassIndexFor(classes, 0); got != 0 {
		t.Fatalf("zero-byte request got class %d, want 0", got)
	}
}

func TestClassIndexForMatchesLinearScan(t *testing.T) {
	classes := BuildSizeClasses(1 << 12)
	rng := rand.New(rand.NewSource(42))
	linear := func(n int) int {
		for _, c := range classes {
			if c.DataBytes >= n {
				return c.Index
			}
		}
		return -1
	}
	for i := 0; i < 2000; i++ {
		n := rng.Intn(40000) + 1
		if got, want := ClassIndexFor(classes, n), linear(n); got != want {
			t.Fatalf("size %d: binary %d, linear %d", n, got, want)
		}
	}
}

func TestGeometryRegionsDoNotOverlap(t *testing.T) {
	g, err := NewGeometry(GeometryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if g.SegVecBase < 8 {
		t.Fatal("segment vec overlaps reserved words")
	}
	if g.ClientVecBase < g.SegVecBase+Addr(2*g.NumSegments) {
		t.Fatal("client vec overlaps segment vec")
	}
	if g.QueueRegBase < g.ClientVecBase+Addr(uint64(g.MaxClients)*g.ClientStateWords) {
		t.Fatal("queue registry overlaps client vec")
	}
	if g.SegmentsBase < g.QueueRegBase+Addr(g.MaxQueues) {
		t.Fatal("segments overlap queue registry")
	}
	if g.TelemetryBase != g.SegmentsBase+Addr(uint64(g.NumSegments)*g.SegmentWords) {
		t.Fatal("telemetry region overlaps segments")
	}
	if g.TotalWords <= uint64(g.TelemetryBase) {
		t.Fatal("TotalWords inconsistent")
	}
}

func TestGeometrySlotLeaseArea(t *testing.T) {
	g, err := NewGeometry(GeometryConfig{MaxClients: 200})
	if err != nil {
		t.Fatal(err)
	}
	// The slot-lease area sits between the reserved pool-header words and
	// the segment vec: bitmap words first, then one generation word per slot.
	if g.SlotMapBase != 16 {
		t.Fatalf("SlotMapBase = %d, want 16 (after the reserved header words)", g.SlotMapBase)
	}
	if want := uint64((200 + 63) / 64); g.SlotMapWords != want {
		t.Fatalf("SlotMapWords = %d, want %d for 200 clients", g.SlotMapWords, want)
	}
	if g.SlotGenBase != g.SlotMapBase+Addr(g.SlotMapWords) {
		t.Fatal("generation words do not follow the bitmap")
	}
	if g.SegVecBase != g.SlotGenBase+Addr(200) {
		t.Fatal("segment vec does not follow the slot-lease area")
	}
	// Bit addressing: client IDs are 1-based, bit positions 0-based.
	if a, bit := g.SlotMapBit(1); a != g.SlotMapBase || bit != 1 {
		t.Fatalf("SlotMapBit(1) = (%d, %#x)", a, bit)
	}
	if a, bit := g.SlotMapBit(64); a != g.SlotMapBase || bit != 1<<63 {
		t.Fatalf("SlotMapBit(64) = (%d, %#x)", a, bit)
	}
	if a, bit := g.SlotMapBit(65); a != g.SlotMapBase+1 || bit != 1 {
		t.Fatalf("SlotMapBit(65) = (%d, %#x)", a, bit)
	}
	if g.SlotGenAddr(1) != g.SlotGenBase || g.SlotGenAddr(200) != g.SlotGenBase+199 {
		t.Fatal("SlotGenAddr does not map 1-based IDs onto the area")
	}
}

func TestGeometryTelemetryRegion(t *testing.T) {
	g, err := NewGeometry(GeometryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Sub-areas tile the region in order and stay inside the pool.
	if g.TelTimelineBase(1) != g.TelemetryBase+TelHeaderWords {
		t.Fatal("timeline area does not follow the header")
	}
	if g.TelBlockBase(0) != g.TelTimelineBase(g.MaxClients)+TelTimelineWords {
		t.Fatal("metric blocks do not follow the timelines")
	}
	if g.TelRingRecordBase(0) != g.TelSlotBase(g.MaxClients, 1)+Addr(g.TelSlotWords) {
		t.Fatal("event ring does not follow the metric blocks")
	}
	end := g.TelRingRecordBase(TelRingRecords-1) + TelRecordWords
	if uint64(end) != g.TotalWords {
		t.Fatalf("telemetry region ends at %d, pool has %d words", end, g.TotalWords)
	}
	// Addresses in the telemetry region are not segment addresses.
	if got := g.SegmentIndexOf(g.TelemetryBase); got != -1 {
		t.Fatalf("SegmentIndexOf(TelemetryBase) = %d, want -1", got)
	}
	if g.TelSlotWords%8 != 0 || g.TelBlockWords%8 != 0 {
		t.Fatal("telemetry blocks not cache-line aligned")
	}
}

func TestGeometrySegmentPageMath(t *testing.T) {
	g, err := NewGeometry(GeometryConfig{NumSegments: 4, SegmentWords: 1 << 14, PageWords: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// Header plus pages must fit within the segment.
	if g.SegHeaderWords+uint64(g.PagesPerSegment)*g.PageWords > g.SegmentWords {
		t.Fatalf("pages overflow segment: hdr=%d pages=%d×%d seg=%d",
			g.SegHeaderWords, g.PagesPerSegment, g.PageWords, g.SegmentWords)
	}
	for s := 0; s < g.NumSegments; s++ {
		base := g.SegmentBase(s)
		if got := g.SegmentIndexOf(base); got != s {
			t.Fatalf("SegmentIndexOf(base of %d) = %d", s, got)
		}
		if got := g.SegmentIndexOf(base + Addr(g.SegmentWords) - 1); got != s {
			t.Fatalf("SegmentIndexOf(last word of %d) = %d", s, got)
		}
		for p := 0; p < g.PagesPerSegment; p++ {
			pb := g.PageBase(s, p)
			if got := g.PageIndexOf(s, pb); got != p {
				t.Fatalf("PageIndexOf(base of %d/%d) = %d", s, p, got)
			}
			if got := g.PageIndexOf(s, pb+Addr(g.PageWords)-1); got != p {
				t.Fatalf("PageIndexOf(last word of %d/%d) = %d", s, p, got)
			}
			if pb+Addr(g.PageWords) > base+Addr(g.SegmentWords) {
				t.Fatalf("page %d/%d overflows its segment", s, p)
			}
			// Page meta must be inside the header region.
			if g.PageMetaAddr(s, p)+PageMetaWords > base+Addr(g.SegHeaderWords) {
				t.Fatalf("page meta %d/%d outside header", s, p)
			}
		}
	}
	if g.PageIndexOf(0, g.SegmentBase(0)) != -1 {
		t.Fatal("segment header address must not map to a page")
	}
	if g.SegmentIndexOf(1) != -1 {
		t.Fatal("global metadata must not map to a segment")
	}
}

func TestGeometryValidation(t *testing.T) {
	if _, err := NewGeometry(GeometryConfig{PageWords: 8}); err == nil {
		t.Fatal("tiny pages must be rejected")
	}
	if _, err := NewGeometry(GeometryConfig{SegmentWords: 1 << 10, PageWords: 1 << 10}); err == nil {
		t.Fatal("segment smaller than two pages must be rejected")
	}
	if _, err := NewGeometry(GeometryConfig{MaxClients: 1 << 17}); err == nil {
		t.Fatal("MaxClients beyond lcid width must be rejected")
	}
}

func TestEraAddrIsWithinOwnRow(t *testing.T) {
	g, err := NewGeometry(GeometryConfig{MaxClients: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		base := g.ClientStateBase(i)
		end := base + Addr(g.ClientStateWords)
		for j := 1; j <= 8; j++ {
			a := g.EraAddr(i, j)
			if a < base || a >= end {
				t.Fatalf("Era[%d][%d] at %d outside client state [%d,%d)", i, j, a, base, end)
			}
		}
		if g.ClientRedoBase(i) < base || g.ClientRedoBase(i)+Addr(g.RedoWords) > g.EraAddr(i, 0) {
			t.Fatalf("redo area of client %d overlaps era row", i)
		}
	}
	// Rows of different clients must not overlap.
	if g.EraAddr(1, 8) >= g.ClientStateBase(2) {
		t.Fatal("era row of client 1 overlaps client 2's state")
	}
}

func TestBlocksPerPage(t *testing.T) {
	g, err := NewGeometry(GeometryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range g.Classes {
		n := g.BlocksPerPage(c)
		if n < 1 {
			t.Fatalf("class %d fits %d blocks per page", c.Index, n)
		}
		if uint64(n)*c.BlockWords > g.PageWords {
			t.Fatalf("class %d: %d blocks overflow page", c.Index, n)
		}
	}
	if g.RootRefsPerPage() != int(g.PageWords)/RootRefWords {
		t.Fatal("RootRefsPerPage mismatch")
	}
}
