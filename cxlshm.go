// Package cxlshm is a partial-failure-resilient memory management system for
// (CXL-based) distributed shared memory — a Go reproduction of CXL-SHM
// (SOSP 2023).
//
// A Pool models a CXL-attached shared memory device with its own failure
// domain. Clients — one per goroutine, standing in for threads, processes,
// or machines — allocate fine-grained shared objects, exchange zero-copy
// references through shared queues, and may crash at any instruction without
// leaking memory, double-freeing, or leaving wild pointers behind: an
// era-based non-blocking reference counting algorithm plus an asynchronous
// recovery service reclaim everything a failed client possessed while other
// clients keep running.
//
// Quick start:
//
//	pool, _ := cxlshm.NewPool(cxlshm.Config{})
//	defer pool.Close()
//	a, _ := pool.Connect()
//	b, _ := pool.Connect()
//
//	ref, _ := a.Malloc(64, 0)          // allocate 64 shared bytes
//	ref.Write(0, []byte("hello"))       // direct access, no copies
//	q, _ := a.NewQueueTo(b.ID(), 16)    // shared SPSC transfer queue
//	a.Send(q, ref)                      // pass by reference
//	ref.Release()
//
//	qb, _ := b.OpenQueueFrom(a.ID())
//	got, _ := b.Receive(qb)             // exactly-once ownership transfer
//	buf := make([]byte, 5)
//	got.Read(0, buf)                    // reads "hello"
//	got.Release()
//
// If a client dies (or simply stops heartbeating), the pool's monitor fences
// it and recovers its references asynchronously; see Pool.StartMonitor.
package cxlshm

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cxl"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/shm"
)

// Addr is a machine-independent pointer into the shared pool (a word
// offset; 0 is nil). Most applications never touch raw addresses — they use
// Ref — but shared-everything data structures (embedded references, direct
// word CAS) work in terms of Addr.
type Addr = layout.Addr

// Errors re-exported from the implementation.
var (
	ErrOutOfMemory      = shm.ErrOutOfMemory
	ErrTooManyClients   = shm.ErrTooManyClients
	ErrRefCountOverflow = shm.ErrRefCountOverflow
	ErrStaleReference   = shm.ErrStaleReference
	ErrFenced           = shm.ErrFenced
	ErrTooLarge         = shm.ErrTooLarge
	ErrQueueFull        = shm.ErrQueueFull
	ErrQueueEmpty       = shm.ErrQueueEmpty
	ErrLeaseAliased     = shm.ErrLeaseAliased
	ErrNoDirectAccess   = shm.ErrNoDirectAccess
	ErrReleased         = errors.New("cxlshm: use of released reference")
)

// LatencyModel selects how the simulated device charges memory latency.
// See the paper's Table 1 for the three profiles it compares.
type LatencyModel int

// Latency models.
const (
	LatencyNone       LatencyModel = iota // no injected latency (default)
	LatencyLocalNUMA                      // ~110 ns random-access
	LatencyRemoteNUMA                     // ~200 ns random-access
	LatencyCXL                            // ~390 ns random-access
)

// Config sizes a Pool. Zero fields take defaults suitable for tests and
// laptop-scale benchmarks; the paper's production geometry (64 MB segments)
// is just larger numbers.
type Config struct {
	MaxClients   int // default 32
	NumSegments  int // default 64
	SegmentBytes int // default 512 KiB; the paper uses 64 MiB
	PageBytes    int // default 32 KiB
	MaxQueues    int // default 128
	Latency      LatencyModel

	// FlushCostNS optionally charges each RootRef cache-line flush, for
	// reproducing the Figure 7 breakdown. Zero means free flushes.
	FlushCostNS int
	// FenceCostNS optionally charges each allocation-path fence.
	FenceCostNS int

	// PoolFile, when set, backs the pool with an mmap'd file at this path
	// (must not already exist). The pool then survives this process: any
	// other process — or a later run — reopens it alive, no copy, with
	// Attach. Requires a POSIX platform.
	PoolFile string
	// Backend selects the device backend: "" or "heap" for process memory,
	// "mmap" for an unlinked temporary file through the mmap data path
	// (useful to exercise the cross-process backend in tests; the
	// CXLSHM_BACKEND environment variable sets the same default globally).
	Backend string
}

// Pool is a shared memory pool plus its recovery machinery.
type Pool struct {
	p   *shm.Pool
	svc *recovery.Service
	mon *recovery.Monitor
	// stale is the set of leftover clients recorded at Attach time, before
	// this incarnation connected anything of its own.
	stale []int
	// closeDev marks pools explicitly tied to a file (PoolFile, Attach):
	// for those, Close unmaps the device. Pools on process-lifetime
	// backends (heap, env-selected anon mmap) stay usable after Close —
	// the documented contract — and are reclaimed with the process.
	closeDev bool
}

// NewPool creates and formats a pool, and connects its recovery service.
func NewPool(cfg Config) (*Pool, error) {
	var lat cxl.Latency
	switch cfg.Latency {
	case LatencyNone:
	case LatencyLocalNUMA:
		lat = cxl.LatencyLocalNUMA
	case LatencyRemoteNUMA:
		lat = cxl.LatencyRemoteNUMA
	case LatencyCXL:
		lat = cxl.LatencyCXL
	default:
		return nil, fmt.Errorf("cxlshm: unknown latency model %d", cfg.Latency)
	}
	lat.FlushNS = cfg.FlushCostNS
	lat.FenceNS = cfg.FenceCostNS
	p, err := shm.NewPool(shm.Config{
		Geometry: layout.GeometryConfig{
			MaxClients:   cfg.MaxClients,
			NumSegments:  cfg.NumSegments,
			SegmentWords: uint64(cfg.SegmentBytes / layout.WordBytes),
			PageWords:    uint64(cfg.PageBytes / layout.WordBytes),
			MaxQueues:    cfg.MaxQueues,
		},
		Latency: lat,
		File:    cfg.PoolFile,
		Backend: cfg.Backend,
	})
	if err != nil {
		return nil, err
	}
	svc, err := recovery.NewService(p)
	if err != nil {
		return nil, err
	}
	return &Pool{p: p, svc: svc, closeDev: cfg.PoolFile != ""}, nil
}

// Attach reopens the pool file at path (created by a NewPool with
// Config.PoolFile, possibly by another OS process, possibly one that
// crashed). The pool comes back alive and unmoved — the mmap'd file *is*
// the device, exactly the paper's independent-failure-domain story. The
// superblock (magic, geometry, layout version) is validated before
// anything is touched. Clients of the previous owner that never exited
// cleanly are listed by StaleClients; Recover each before connecting new
// clients.
func Attach(path string) (*Pool, error) {
	p, err := shm.OpenFile(path)
	if err != nil {
		return nil, err
	}
	// Record the leftovers before this incarnation connects anything (the
	// recovery service below takes a client slot of its own, which must not
	// end up in the stale set).
	stale := p.StaleClients()
	svc, err := recovery.NewService(p)
	if err != nil {
		p.CloseDevice()
		return nil, err
	}
	return &Pool{p: p, svc: svc, stale: stale, closeDev: true}, nil
}

// StaleClients lists client IDs left alive or dead by a previous
// incarnation of an attached pool (recorded at Attach time). Hand each to
// Recover before connecting new clients.
func (p *Pool) StaleClients() []int { return p.stale }

// Connect joins the pool as a new client. Each client must be used from a
// single goroutine (the paper's one-client-per-thread model).
func (p *Pool) Connect() (*Client, error) {
	c, err := p.p.Connect()
	if err != nil {
		return nil, err
	}
	return &Client{c: c, pool: p}, nil
}

// StartMonitor launches the asynchronous failure detector: clients that stop
// calling Heartbeat for roughly threshold×interval are fenced and recovered
// in the background without blocking anyone (paper §3.2).
func (p *Pool) StartMonitor(interval time.Duration, threshold int) {
	if p.mon != nil {
		return
	}
	p.mon = recovery.NewMonitor(p.svc, recovery.MonitorConfig{
		Interval: interval, Threshold: threshold,
	})
	p.mon.Start()
}

// Recover synchronously fences and recovers client cid (what the monitor
// does on heartbeat loss; exposed for deterministic tests and tools).
func (p *Pool) Recover(cid int) error {
	if err := p.p.MarkClientDead(cid); err != nil {
		return err
	}
	_, err := p.svc.RecoverClient(cid)
	return err
}

// Maintain runs one round of background maintenance (abandoned-segment
// scans, queue registry sweep) synchronously. The monitor does this
// continuously when started.
func (p *Pool) Maintain() {
	mon := p.mon
	if mon == nil {
		mon = recovery.NewMonitor(p.svc, recovery.MonitorConfig{})
	}
	mon.Tick()
}

// Close stops the monitor (if started). For a file-backed pool (PoolFile,
// Attach) it also unmaps the file — the pool itself survives in it and can
// be re-Attached later; such a pool must not be used after Close. Pools on
// process-lifetime backends remain usable (they are reclaimed with the
// process).
func (p *Pool) Close() {
	if p.mon != nil {
		p.mon.Stop()
		p.mon = nil
	}
	if p.closeDev {
		p.closeDev = false
		p.p.CloseDevice()
	}
}

// Usage summarizes pool occupancy (segment states, live clients, size).
func (p *Pool) Usage() shm.Usage { return p.p.Usage() }

// Stats is a point-in-time observability snapshot of a pool: occupancy,
// aggregated hot-path counters and latency histograms (summed over all
// client shards), and the monitor's fencing and recovery history —
// including every failed recovery attempt and each completed recovery's
// detection-to-recovered duration (the recovery-time SLO).
type Stats struct {
	Usage      shm.Usage                        `json:"usage"`
	Counters   map[string]uint64                `json:"counters"`
	Histograms map[string]obs.HistogramSnapshot `json:"histograms"`
	Fences     []recovery.FenceRecord           `json:"fences,omitempty"`
	Failures   []recovery.RecoveryFailure       `json:"recovery_failures,omitempty"`
	Recoveries []recovery.RecoveryRecord        `json:"recoveries,omitempty"`
}

// Stats aggregates the pool's sharded metrics into one snapshot. Safe to call
// concurrently with running clients; counters are read atomically per shard.
func (p *Pool) Stats() Stats {
	snap := p.p.Obs().Snapshot()
	st := Stats{
		Usage:      p.p.Usage(),
		Counters:   snap.Counters,
		Histograms: snap.Histograms,
	}
	if p.mon != nil {
		st.Fences = p.mon.Fences()
		st.Failures = p.mon.Failures()
		st.Recoveries = p.mon.Recoveries()
	}
	return st
}

// LastRecovery returns the most recent completed recovery (with its
// detection-to-recovered duration) and false if the monitor has not
// completed any, or was never started.
func (p *Pool) LastRecovery() (recovery.RecoveryRecord, bool) {
	if p.mon == nil {
		return recovery.RecoveryRecord{}, false
	}
	return p.mon.LastRecovery()
}

// TraceEvents returns the pool's recovery-lifecycle event trace (client
// fences, leak flags, segment scans, redo replays), oldest first. The trace
// is a bounded ring; old events are overwritten.
func (p *Pool) TraceEvents() []obs.Event { return p.p.Obs().Tracer().Events() }

// Internal exposes the underlying implementation pool for benchmarks,
// validators, and tools. Applications do not need it.
func (p *Pool) Internal() *shm.Pool { return p.p }

// Client is one RDSM participant. Not goroutine-safe; use one Client per
// goroutine.
type Client struct {
	c    *shm.Client
	pool *Pool
}

// ID returns the client's pool-wide ID.
func (c *Client) ID() int { return c.c.ID() }

// Heartbeat signals liveness to the monitor.
func (c *Client) Heartbeat() { c.c.Heartbeat() }

// Close marks the client dead; the recovery service reclaims anything it
// still holds. Release references first for a tidy exit — but exiting dirty
// is safe, that is the whole point.
func (c *Client) Close() error { return c.c.Close() }

// Internal exposes the implementation client (benchmarks and tools).
func (c *Client) Internal() *shm.Client { return c.c }

// Malloc allocates size bytes of shared memory with embedRefs embedded
// reference slots at the start of the data area, returning a counted
// reference (paper §3.1: cxl_malloc).
func (c *Client) Malloc(size, embedRefs int) (*Ref, error) {
	root, block, err := c.c.Malloc(size, embedRefs)
	if err != nil {
		return nil, err
	}
	return &Ref{c: c, root: root, block: block}, nil
}

// NewQueueTo creates a shared SPSC transfer queue from this client to
// receiver (paper §5.2). The queue is itself a counted shared object; Close
// both ends to reclaim it.
func (c *Client) NewQueueTo(receiver, capacity int) (*Queue, error) {
	root, block, err := c.c.CreateQueue(receiver, capacity)
	if err != nil {
		return nil, err
	}
	return &Queue{c: c, root: root, block: block}, nil
}

// OpenQueueFrom finds (in the pool's queue registry) and opens the queue
// whose sender is sender and whose receiver is this client.
func (c *Client) OpenQueueFrom(sender int) (*Queue, error) {
	block := c.c.FindQueueFrom(sender)
	if block == 0 {
		return nil, fmt.Errorf("cxlshm: no queue from client %d to %d", sender, c.ID())
	}
	root, err := c.c.OpenQueue(block)
	if err != nil {
		return nil, err
	}
	return &Queue{c: c, root: root, block: block}, nil
}

// Send transfers a counted reference into the queue (paper cxl_send_to).
// The sender keeps its own reference; release it when done. Ownership of
// the in-flight reference belongs to the queue until received.
func (c *Client) Send(q *Queue, ref *Ref) error {
	if ref.root == 0 {
		return ErrReleased
	}
	return c.c.Send(q.block, ref.block)
}

// Receive takes the next reference from the queue (paper cxl_receive_from),
// returning ErrQueueEmpty when nothing is in flight.
func (c *Client) Receive(q *Queue) (*Ref, error) {
	root, block, err := c.c.Receive(q.block)
	if err != nil {
		return nil, err
	}
	return &Ref{c: c, root: root, block: block}, nil
}

// Ref is a CXLRef: a smart pointer to a shared object. It is tied to the
// client that created it and is not goroutine-safe (clone-and-send to share
// across clients, paper §3.1).
type Ref struct {
	c     *Client
	root  Addr // RootRef slot in the shared pool
	block Addr // the CXLObj
}

// Addr returns the object's machine-independent address (for embedding into
// other objects or direct word operations).
func (r *Ref) Addr() Addr { return r.block }

// Clone adds a thread-local reference (no atomics, no flush — the two-tier
// count of §5.2). Both the clone and the original must be Released.
func (r *Ref) Clone() *Ref {
	r.c.c.CloneRoot(r.root)
	return &Ref{c: r.c, root: r.root, block: r.block}
}

// Release drops this reference. When the last reference anywhere drops, the
// object is reclaimed (cascading through embedded references). Returns
// whether this release freed the object.
func (r *Ref) Release() (bool, error) {
	if r.root == 0 {
		return false, ErrReleased
	}
	freed, err := r.c.c.ReleaseRoot(r.root)
	if err == nil {
		r.root = 0
	}
	return freed, err
}

// Size returns the object's usable data size in bytes.
func (r *Ref) Size() int { return r.c.c.DataBytesOf(r.block) }

// Read copies len(p) bytes from the object at byte offset off.
func (r *Ref) Read(off int, p []byte) { r.c.c.ReadData(r.block, off, p) }

// Write stores p into the object at byte offset off.
func (r *Ref) Write(off int, p []byte) { r.c.c.WriteData(r.block, off, p) }

// LoadWord atomically reads data word i.
func (r *Ref) LoadWord(i int) uint64 { return r.c.c.LoadWord(r.block, i) }

// StoreWord atomically writes data word i.
func (r *Ref) StoreWord(i int, v uint64) { r.c.c.StoreWord(r.block, i, v) }

// CASWord atomically compares-and-swaps data word i.
func (r *Ref) CASWord(i int, old, new uint64) bool { return r.c.c.CASWord(r.block, i, old, new) }

// Lease returns a zero-copy []byte view aliasing the object's data area on
// the device (the paper's §3.1 data plane: get_addr plus plain loads and
// stores). No bytes are staged through the Go heap, and the acquire/release
// cycle costs zero device metadata accesses. The Ref must stay un-Released
// for the lease's lifetime, at most one lease per object may be live per
// client (ErrLeaseAliased), and backends that cannot alias device memory
// return ErrNoDirectAccess — fall back to Read/Write there.
func (r *Ref) Lease() (*Lease, error) {
	if r.root == 0 {
		return nil, ErrReleased
	}
	l, err := r.c.c.AcquireLease(r.block)
	if err != nil {
		return nil, err
	}
	return &Lease{c: r.c, l: l}, nil
}

// Lease is a zero-copy byte window over one shared object's data area.
type Lease struct {
	c *Client
	l *shm.Lease
}

// Bytes returns the aliasing window. It must not be used after Release.
func (l *Lease) Bytes() []byte { return l.l.Bytes() }

// Release invalidates the window and recycles the lease. Releasing twice is
// a harmless no-op.
func (l *Lease) Release() { l.c.c.ReleaseLease(l.l) }

// SetEmbed links embedded reference idx to target's object (single-writer;
// see paper §4.3 and §5.4).
func (r *Ref) SetEmbed(idx int, target *Ref) error {
	return r.c.c.SetEmbed(r.block, idx, target.block)
}

// SetEmbedAddr links embedded reference idx to an object by address (for
// data structures that traverse raw embedded pointers).
func (r *Ref) SetEmbedAddr(idx int, target Addr) error {
	return r.c.c.SetEmbed(r.block, idx, target)
}

// ChangeEmbed atomically re-points embedded reference idx to target,
// releasing the previous target (the §5.4 change function).
func (r *Ref) ChangeEmbed(idx int, target *Ref) error {
	return r.c.c.ChangeEmbed(r.block, idx, target.block)
}

// ChangeEmbedAddr is ChangeEmbed by address.
func (r *Ref) ChangeEmbedAddr(idx int, target Addr) error {
	return r.c.c.ChangeEmbed(r.block, idx, target)
}

// ClearEmbed unlinks embedded reference idx, releasing its target.
func (r *Ref) ClearEmbed(idx int) error { return r.c.c.ClearEmbed(r.block, idx) }

// LoadEmbed reads embedded reference idx (0 when unset).
func (r *Ref) LoadEmbed(idx int) (Addr, error) { return r.c.c.LoadEmbed(r.block, idx) }

// PublishRoot attaches well-known named-root slot i to ref's object so it
// stays alive independent of any client (the paper's persistent root
// objects, §6.4). Drop with UnpublishRoot.
func (c *Client) PublishRoot(i int, ref *Ref) error {
	return c.c.PublishRoot(i, ref.block)
}

// OpenRoot takes this client's own counted reference to the object at
// named-root slot i.
func (c *Client) OpenRoot(i int) (*Ref, error) {
	root, block, err := c.c.OpenRoot(i)
	if err != nil {
		return nil, err
	}
	return &Ref{c: c, root: root, block: block}, nil
}

// UnpublishRoot releases named-root slot i's reference.
func (c *Client) UnpublishRoot(i int) error { return c.c.UnpublishRoot(i) }

// AttachAddr takes a new counted reference to an object this client can
// already reach (e.g. an address read from an embedded reference, under the
// data structure's own read protocol).
func (c *Client) AttachAddr(block Addr) (*Ref, error) {
	root, err := c.c.AttachRoot(block)
	if err != nil {
		return nil, err
	}
	return &Ref{c: c, root: root, block: block}, nil
}

// --- hazard-era protected reads (paper §5.4's deferred reclamation) ---

// EnterRead publishes this client's hazard era before traversing a linked
// structure whose writer uses RetireEmbed/ChangeEmbedRetire; pair with
// ExitRead. While published, retired nodes the reader may be standing on
// are not reclaimed.
func (c *Client) EnterRead() uint64 { return c.c.EnterRead() }

// ExitRead clears the published hazard era.
func (c *Client) ExitRead() { c.c.ExitRead() }

// ReclaimRetired frees retired nodes no live reader can still hold,
// returning how many were reclaimed. Writers call this periodically.
func (c *Client) ReclaimRetired() int { return c.c.ReclaimRetired() }

// RetiredCount reports how many unlinked nodes await safe reclamation.
func (c *Client) RetiredCount() int { return c.c.RetiredCount() }

// RetireEmbed unlinks embedded reference idx like ClearEmbed but defers the
// target's reclamation until no reader's hazard era can cover it.
func (r *Ref) RetireEmbed(idx int) error { return r.c.c.RetireEmbed(r.block, idx) }

// ChangeEmbedRetire re-points embedded reference idx to target like
// ChangeEmbed but defers reclamation of the old node (safe for concurrent
// readers).
func (r *Ref) ChangeEmbedRetire(idx int, target *Ref) error {
	return r.c.c.ChangeEmbedRetire(r.block, idx, target.block)
}

// Queue is a shared SPSC reference-transfer queue endpoint.
type Queue struct {
	c     *Client
	root  Addr
	block Addr
}

// Len reports how many references are in flight.
func (q *Queue) Len() int { return q.c.c.QueueLen(q.block) }

// Close releases this endpoint's reference to the queue. When both ends
// (and the recovery service, if it had to step in) are done, the queue and
// any in-flight references are reclaimed.
func (q *Queue) Close() error {
	if q.root == 0 {
		return ErrReleased
	}
	_, err := q.c.c.ReleaseRoot(q.root)
	if err == nil {
		q.root = 0
	}
	return err
}
