// Command cxlsnap demonstrates that the pool's contents outlive every
// client process (the device has its own power supply — paper Figure 1):
// it builds a shared KV store, simulates total client loss, persists the
// pool, and in a later invocation (any process) attaches it, recovers the
// stale clients, and reads the data back.
//
// Two persistence modes:
//
//	cxlsnap -create pool.img -keys 500     # copy mode: snapshot image file
//	cxlsnap -create pool.cxl -mmap         # live mode: the file IS the pool
//	cxlsnap -open  pool.img|pool.cxl       # later "boot": attach and verify
//
// In -mmap mode the pool is built directly on an mmap'd cxl.MapDevice file:
// nothing is copied at save or attach time, and a second OS process opening
// the same file sees the pool alive and unmoved. -open sniffs the format.
// Either way the attach validates the pool superblock (magic, geometry,
// layout version) and refuses incompatible pools with a clear error.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"time"

	"repro/internal/check"
	"repro/internal/cxl"
	"repro/internal/kv"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/shm"
)

const imageMagic = 0x43584C534E415031 // "CXLSNAP1"

func main() {
	create := flag.String("create", "", "create a pool, populate it, save it to this file")
	open := flag.String("open", "", "attach a saved pool (image or mmap file), recover, and verify")
	metrics := flag.String("metrics", "", "pretty-print a saved pool's telemetry region (read-only; no recovery)")
	fsck := flag.String("fsck", "", "check a saved pool's metadata; with -repair, fix what can be fixed")
	repair := flag.Bool("repair", false, "with -fsck: run the repairing fsck and write the result back")
	flip := flag.String("flip", "", `with -fsck: first flip a bit ("addr" or "addr:bit", addr hex ok) — self-test aid`)
	mmap := flag.Bool("mmap", false, "with -create: back the pool with the file itself (no-copy, cross-process)")
	keys := flag.Int("keys", 500, "keys to store")
	flag.Parse()

	switch {
	case *create != "":
		if err := doCreate(*create, *keys, *mmap); err != nil {
			fail(err)
		}
	case *open != "":
		if err := doOpen(*open); err != nil {
			fail(err)
		}
	case *metrics != "":
		if err := doMetrics(*metrics); err != nil {
			fail(err)
		}
	case *fsck != "":
		if err := doFsck(*fsck, *repair, *flip); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// doFsck attaches a saved pool and audits its metadata. Without -repair it
// is a pure detector (nonzero exit on issues); with -repair it runs the
// repairing fsck, prints the full RepairReport (actions and blast radius),
// and persists the repaired pool back to the file.
func doFsck(path string, repair bool, flip string) error {
	pool, err := attach(path)
	if err != nil {
		return err
	}
	defer pool.CloseDevice()

	if flip != "" {
		addrSpec, bitSpec, _ := strings.Cut(flip, ":")
		a, err := strconv.ParseUint(strings.TrimPrefix(addrSpec, "0x"), 16, 64)
		if err != nil {
			if a, err = strconv.ParseUint(addrSpec, 10, 64); err != nil {
				return fmt.Errorf("fsck: bad -flip address %q", addrSpec)
			}
		}
		bit := uint64(0)
		if bitSpec != "" {
			if bit, err = strconv.ParseUint(bitSpec, 10, 64); err != nil || bit > 63 {
				return fmt.Errorf("fsck: bad -flip bit %q", bitSpec)
			}
		}
		old := pool.Device().Load(a)
		pool.Device().Store(a, old^(1<<bit))
		fmt.Printf("flipped bit %d of word %#x (%#x -> %#x)\n", bit, a, old, old^(1<<bit))
	}

	res := check.Validate(pool)
	fmt.Printf("fsck %s: %d live objects, %d issues\n", path, res.AllocatedObjects, len(res.Issues))
	for _, is := range res.Issues {
		fmt.Printf("  %s\n", is)
	}
	if !repair {
		if !res.Clean() {
			return fmt.Errorf("pool has %d issues (re-run with -repair)", len(res.Issues))
		}
		fmt.Println("OK: pool metadata is clean")
		return nil
	}

	svc, err := recovery.NewService(pool)
	if err != nil {
		return err
	}
	rep := check.Repair(pool, check.RepairConfig{
		Recover: func(cid int) error { _, err := svc.RecoverClient(cid); return err },
		Log:     func(format string, args ...any) { fmt.Printf("  "+format+"\n", args...) },
	})
	fmt.Printf("repair: %d rounds, %d actions\n", rep.Rounds, len(rep.Actions))
	for _, a := range rep.Actions {
		fmt.Printf("  [%s] @%#x %s\n", a.Kind, a.Addr, a.Detail)
	}
	b := rep.Blast
	fmt.Printf("blast radius: %d words rewritten, %d objects repaired, %d objects + %d pages quarantined, %d objects lost, %d refs severed",
		b.WordsRewritten, b.ObjectsRepaired, b.ObjectsQuarantined, b.PagesQuarantined, b.ObjectsLost, b.RefsSevered)
	if len(b.ClientsAffected) > 0 {
		fmt.Printf(", clients affected %v", b.ClientsAffected)
	}
	fmt.Println()
	if !rep.Repaired {
		return fmt.Errorf("pool still has %d issues after repair", len(rep.Post.Issues))
	}

	// Persist the repaired state: mmap pools already mutated the file (just
	// sync); snapshot images get rewritten.
	if md, ok := cxl.Bottom(pool.Device()).(*cxl.MapDevice); ok {
		if err := md.Sync(); err != nil {
			return err
		}
	} else {
		if err := writeImage(path, pool.Snapshot()); err != nil {
			return err
		}
	}
	fmt.Printf("OK: pool repaired and written back to %s (%d issues fixed)\n", path, len(rep.Pre.Issues))
	return nil
}

func doCreate(path string, keys int, mmap bool) error {
	cfg := shm.Config{Geometry: layout.GeometryConfig{
		MaxClients: 8, NumSegments: 64, SegmentWords: 1 << 14, PageWords: 1 << 10,
	}}
	if mmap {
		cfg.File = path
	}
	pool, err := shm.NewPool(cfg)
	if err != nil {
		return err
	}
	c, err := pool.Connect()
	if err != nil {
		return err
	}
	s, err := kv.Create(c, 0, 1024, 32, 1)
	if err != nil {
		return err
	}
	val := make([]byte, 32)
	for k := 0; k < keys; k++ {
		val[0], val[1] = byte(k), byte(k>>8)
		if err := s.Put(uint64(k), val); err != nil {
			return err
		}
	}
	// A real client heartbeats on a timer; one beat after the workload
	// stands in for that cadence — it also publishes the client's counter
	// vector into the pool's telemetry region, where it survives what
	// happens next (inspect it later with -metrics).
	c.Heartbeat()
	fmt.Printf("stored %d keys; client %d now 'loses power' without releasing anything\n", keys, c.ID())
	// No Close, no Release: the pool captures the mess as-is.
	if mmap {
		if md, ok := cxl.Bottom(pool.Device()).(*cxl.MapDevice); ok {
			if err := md.Sync(); err != nil {
				return err
			}
		}
		if err := pool.CloseDevice(); err != nil {
			return err
		}
		fmt.Printf("pool lives in %s (mmap'd, nothing copied)\n", path)
		return nil
	}
	img := pool.Snapshot()
	if err := writeImage(path, img); err != nil {
		return err
	}
	fmt.Printf("device image (%d KiB) written to %s\n", len(img)*8/1024, path)
	return nil
}

// attach opens path as whichever pool format it holds: a snapshot image
// (copy restored into a heap device) or a cxl.MapDevice file (mapped alive,
// no copy). Both paths validate the pool superblock before use.
func attach(path string) (*shm.Pool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 8)
	_, rerr := io.ReadFull(f, hdr)
	f.Close()
	if rerr == nil && binary.LittleEndian.Uint64(hdr) == imageMagic {
		img, err := readImage(path)
		if err != nil {
			return nil, err
		}
		return shm.AttachSnapshot(img)
	}
	// Not a snapshot image: try the live mmap format (OpenFile reports a
	// clear error if it is neither).
	return shm.OpenFile(path)
}

func doOpen(path string) error {
	pool, err := attach(path)
	if err != nil {
		return err
	}
	stale := pool.StaleClients()
	fmt.Printf("attached image: %d stale client(s) from the previous incarnation\n", len(stale))
	svc, err := recovery.NewService(pool)
	if err != nil {
		return err
	}
	for _, cid := range stale {
		if err := pool.MarkClientDead(cid); err != nil {
			return err
		}
		rep, err := svc.RecoverClient(cid)
		if err != nil {
			return err
		}
		fmt.Printf("  recovered client %d (swept %d refs, freed %d segments)\n",
			cid, rep.SweptRoots, rep.SegsFreed)
	}
	mon := recovery.NewMonitor(svc, recovery.MonitorConfig{})
	for i := 0; i < 4; i++ {
		mon.Tick()
	}

	c, err := pool.Connect()
	if err != nil {
		return err
	}
	s, err := kv.Open(c, 0)
	if err != nil {
		return err
	}
	buf := make([]byte, 32)
	found, bad := 0, 0
	for k := uint64(0); ; k++ {
		if _, err := s.Get(k, buf); err != nil {
			break
		}
		if buf[0] != byte(k) || buf[1] != byte(k>>8) {
			bad++
		}
		found++
	}
	fmt.Printf("read back %d keys (%d corrupt)\n", found, bad)
	res := check.Validate(pool)
	fmt.Printf("pool audit: %d live objects, %d issues\n", res.AllocatedObjects, len(res.Issues))
	if bad > 0 || !res.Clean() {
		return fmt.Errorf("image verification failed")
	}
	fmt.Println("OK: the pool outlived every client process")
	return nil
}

// doMetrics pretty-prints the pool's crash-surviving telemetry region:
// every published metric block — dead clients' final counters included,
// that is the point — each slot's recovery timeline, and the shared
// recovery-event ring. Live mmap pools are attached PROT_READ, so this is
// safe to point at a pool other processes are actively using.
func doMetrics(path string) error {
	pool, err := attachObserver(path)
	if err != nil {
		return err
	}
	defer pool.CloseDevice()
	tel := pool.Telemetry()
	if err := tel.Validate(); err != nil {
		return err
	}
	snap := tel.Snapshot()
	fmt.Printf("telemetry region of %s (layout v%d, %d clients)\n\n",
		path, layout.LayoutVersion, pool.Geometry().MaxClients)

	fmt.Println("pool block (recovery service, CAS-added):")
	blockSummary(&snap.Pool)
	for i := range snap.Clients {
		b := &snap.Clients[i]
		status := "alive"
		wantOdd := true // ALIVE and DEAD slots hold an odd (leased) generation
		switch pool.ClientStatus(b.Index) {
		case layout.ClientDead:
			status = "DEAD — final pre-fence counters below"
		case layout.ClientRecovered:
			status = "recovered"
			wantOdd = false
		case layout.ClientSlotFree:
			status = "slot free"
			wantOdd = false
		}
		gen := pool.SlotGeneration(b.Index)
		stale := ""
		if (gen&1 == 1) != wantOdd {
			stale = "  ** STALE LEASE: generation parity disagrees with status — run fsck **"
		}
		fmt.Printf("\nclient %d (pid %d, %s, lease gen %d, %d publishes):%s\n",
			b.Index, b.Identity, status, gen, b.Publishes, stale)
		blockSummary(b)
	}
	for _, tl := range snap.Timelines {
		fmt.Printf("\ntimeline client %d: death #%d reason=%s", tl.Client, tl.Deaths, tl.ReasonName)
		if tl.RecoveredNS > 0 {
			fmt.Printf(" recovered (detect→recovered %v, attempts %d, replays %d, reclaimed %d, roots swept %d)",
				time.Duration(tl.DurationNS), tl.Attempts, tl.RedoReplays, tl.Reclaimed, tl.SweptRoots)
		} else {
			fmt.Printf(" (not yet recovered; attempts %d)", tl.Attempts)
		}
		fmt.Println()
	}
	if len(snap.Events) > 0 {
		fmt.Println("\nrecovery-event ring:")
		for _, e := range snap.Events {
			fmt.Printf("  %s  %s\n", e.Time.Format("15:04:05.000"), e.String())
		}
	}
	return nil
}

// blockSummary renders one metric block through the standard snapshot
// summary (non-zero counters, histogram quantiles).
func blockSummary(b *shm.TelemetryBlock) {
	s := obs.Snapshot{Counters: b.CounterMap(), Histograms: b.HistogramMap()}
	s.WriteSummary(os.Stdout)
}

// attachObserver opens path like attach but never writes: mmap pools are
// mapped read-only, snapshot images are restored into a private heap copy.
func attachObserver(path string) (*shm.Pool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 8)
	_, rerr := io.ReadFull(f, hdr)
	f.Close()
	if rerr == nil && binary.LittleEndian.Uint64(hdr) == imageMagic {
		img, err := readImage(path)
		if err != nil {
			return nil, err
		}
		return shm.AttachSnapshot(img)
	}
	return shm.OpenFileReadOnly(path)
}

// writeImage stores the image as little-endian words with a magic header.
func writeImage(path string, words []uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint64(hdr[0:8], imageMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(words)))
	if _, err := f.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 8*4096)
	for off := 0; off < len(words); off += 4096 {
		n := len(words) - off
		if n > 4096 {
			n = 4096
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], words[off+i])
		}
		if _, err := f.Write(buf[:n*8]); err != nil {
			return err
		}
	}
	return f.Sync()
}

func readImage(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(hdr[0:8]) != imageMagic {
		return nil, fmt.Errorf("cxlsnap: %s is not a pool image", path)
	}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	if n > 1<<32 {
		return nil, fmt.Errorf("cxlsnap: absurd image size %d words", n)
	}
	words := make([]uint64, n)
	buf := make([]byte, 8*4096)
	for off := uint64(0); off < n; off += 4096 {
		cnt := n - off
		if cnt > 4096 {
			cnt = 4096
		}
		if _, err := io.ReadFull(f, buf[:cnt*8]); err != nil {
			return nil, err
		}
		for i := uint64(0); i < cnt; i++ {
			words[off+i] = binary.LittleEndian.Uint64(buf[i*8:])
		}
	}
	return words, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cxlsnap:", err)
	os.Exit(1)
}
