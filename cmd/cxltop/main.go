// Command cxltop is a live, cross-process observability dashboard for a
// CXL-SHM pool file: it attaches to the pool READ-ONLY (PROT_READ — the
// MMU itself guarantees the observer cannot perturb the pool) and renders
// what every process mapping the pool is doing, from the pool words alone:
//
//   - per-client operation rates (alloc, free, era bumps, queue traffic)
//     computed from successive telemetry-block snapshots,
//   - allocation latency p50/p99 per client, straight from the published
//     histogram vectors,
//   - live transfer-queue depths,
//   - each client slot's recovery timeline — first missed heartbeat,
//     fence, recovery attempts, redo replays, recovered — including the
//     detection-to-recovered SLO for the most recent death,
//   - the shared recovery-event ring (fences, recoveries, replays),
//     which survives the crash of whichever process wrote it.
//
// Dead clients keep their final published counters on screen: the metric
// blocks live in the pool's failure domain, not the client's.
//
// Usage:
//
//	cxltop pool.cxl                  # live dashboard, 1s refresh
//	cxltop -interval 250ms pool.cxl
//	cxltop -once -json pool.cxl      # one machine-readable snapshot
//	cxltop -once -prom pool.cxl      # Prometheus text exposition
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/shm"
)

func main() {
	interval := flag.Duration("interval", time.Second, "refresh interval")
	once := flag.Bool("once", false, "sample once and exit")
	asJSON := flag.Bool("json", false, "emit one JSON document per sample")
	asProm := flag.Bool("prom", false, "emit Prometheus text exposition per sample")
	nevents := flag.Int("events", 10, "recovery-ring events to show (dashboard mode)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cxltop [flags] <pool-file>")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *interval, *once, *asJSON, *asProm, *nevents); err != nil {
		fmt.Fprintln(os.Stderr, "cxltop:", err)
		os.Exit(1)
	}
}

func run(path string, interval time.Duration, once, asJSON, asProm bool, nevents int) error {
	pool, err := shm.OpenFileReadOnly(path)
	if err != nil {
		return err
	}
	defer pool.CloseDevice()
	if err := pool.Telemetry().Validate(); err != nil {
		return err
	}
	var prev *sample
	for {
		cur := take(pool)
		switch {
		case asJSON:
			if err := emitJSON(pool, path, cur); err != nil {
				return err
			}
		case asProm:
			emitProm(os.Stdout, cur)
		default:
			if !once {
				fmt.Print("\x1b[H\x1b[2J") // home + clear
			}
			render(os.Stdout, path, cur, prev, nevents)
		}
		if once {
			return nil
		}
		prev = cur
		time.Sleep(interval)
	}
}

// sample is one observation of the pool, timed for rate computation.
type sample struct {
	at     time.Time
	snap   shm.TelemetrySnapshot
	queues []shm.QueueDepth
	usage  shm.Usage
	status map[int]uint64 // client slot status words
	beats  map[int]uint64 // heartbeat counters
}

func take(p *shm.Pool) *sample {
	s := &sample{
		at:     time.Now(),
		snap:   p.Telemetry().Snapshot(),
		queues: p.Queues(),
		usage:  p.Usage(),
		status: make(map[int]uint64),
		beats:  make(map[int]uint64),
	}
	geo := p.Geometry()
	for cid := 1; cid <= geo.MaxClients; cid++ {
		s.status[cid] = p.ClientStatus(cid)
		s.beats[cid] = p.Device().Load(geo.ClientHeartbeatAddr(cid))
	}
	return s
}

func emitJSON(p *shm.Pool, path string, s *sample) error {
	out := struct {
		Provenance *obs.Provenance       `json:"provenance"`
		Pool       string                `json:"pool"`
		Usage      shm.Usage             `json:"usage"`
		Queues     []shm.QueueDepth      `json:"queues,omitempty"`
		Telemetry  shm.TelemetrySnapshot `json:"telemetry"`
	}{p.Provenance("cxltop"), path, s.usage, s.queues, s.snap}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Println(string(b))
	return err
}

// --- dashboard rendering ---

func render(w *os.File, path string, cur, prev *sample, nevents int) {
	u := cur.usage
	fmt.Fprintf(w, "cxltop — %s — %s\n", path, cur.at.Format("15:04:05"))
	fmt.Fprintf(w, "segments: %d active, %d free, %d abandoned, %d huge   clients: %d/%d alive, %d dead   pool: %s\n",
		u.SegmentsActive, u.SegmentsFree, u.SegmentsAbandoned, u.SegmentsHuge,
		u.ClientsAlive, u.ClientsMax, u.ClientsDead, humanBytes(u.TotalBytes))
	pc := cur.snap.Pool.Counters
	fmt.Fprintf(w, "recovery service: %d fenced, %d recovered, %d redo replays",
		pc[obs.CtrClientFenced], pc[obs.CtrRecoveryPass], pc[obs.CtrRedoReplay])
	if hs := obs.MakeHistogramSnapshot(cur.snap.Pool.Histos[obs.HistDetectRecoverNS]); hs.Count > 0 {
		fmt.Fprintf(w, "   detect→recovered p50<%s p99<%s", humanNS(hs.P50NS), humanNS(hs.P99NS))
	}
	fmt.Fprintln(w)
	if pc[obs.CtrFsckPass] > 0 {
		fmt.Fprintf(w, "fsck: %d passes, %d issues found, %d repair actions, %d quarantined\n",
			pc[obs.CtrFsckPass], pc[obs.CtrFsckIssues], pc[obs.CtrRepairAction], pc[obs.CtrQuarantine])
	}
	fmt.Fprintln(w)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "CLIENT\tSTATE\tPID\tPUB\tAGE\tALLOC/s\tFREE/s\tERA/s\tSEND/s\tRECV/s\tALLOC p50\tp99")
	for i := range cur.snap.Clients {
		b := &cur.snap.Clients[i]
		cid := b.Index
		var pb *shm.TelemetryBlock
		var dt float64
		if prev != nil {
			for i := range prev.snap.Clients {
				if prev.snap.Clients[i].Index == cid {
					pb = &prev.snap.Clients[i]
					dt = cur.at.Sub(prev.at).Seconds()
					break
				}
			}
		}
		hs := obs.MakeHistogramSnapshot(b.Histos[obs.HistAllocNS])
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			cid, statusName(cur.status[cid]), b.Identity, b.Publishes,
			humanAge(cur.at, b.TimeNS),
			rate(b, pb, obs.CtrAlloc, dt), rate(b, pb, obs.CtrFree, dt),
			rate(b, pb, obs.CtrEraBump, dt),
			rate(b, pb, obs.CtrQueueSend, dt), rate(b, pb, obs.CtrQueueReceive, dt),
			humanNS(hs.P50NS), humanNS(hs.P99NS))
	}
	tw.Flush()

	if len(cur.queues) > 0 {
		fmt.Fprintln(w, "\nQUEUES")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "BLOCK\tSENDER→RECEIVER\tDEPTH\tCAP")
		for _, q := range cur.queues {
			fmt.Fprintf(tw, "%#x\t%d→%d\t%d\t%d\n", q.Block, q.Sender, q.Receiver, q.Depth(), q.Capacity)
		}
		tw.Flush()
	}

	if len(cur.snap.Timelines) > 0 {
		fmt.Fprintln(w, "\nRECOVERY TIMELINES")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "CLIENT\tDEATHS\tREASON\tMISS→FENCE\tATTEMPTS\tREPLAYS\tRECLAIMED\tDETECT→RECOVERED")
		for _, tl := range cur.snap.Timelines {
			missToFence := "-"
			if tl.FirstMissNS > 0 && tl.FencedNS > tl.FirstMissNS {
				missToFence = humanNS(uint64(tl.FencedNS - tl.FirstMissNS))
			}
			slo := "(recovering)"
			if tl.RecoveredNS > 0 {
				slo = humanNS(uint64(tl.DurationNS))
			}
			fmt.Fprintf(tw, "%d\t%d\t%s\t%s\t%d\t%d\t%d\t%s\n",
				tl.Client, tl.Deaths, tl.ReasonName, missToFence,
				tl.Attempts, tl.RedoReplays, tl.Reclaimed, slo)
		}
		tw.Flush()
	}

	if evs := cur.snap.Events; len(evs) > 0 && nevents > 0 {
		if len(evs) > nevents {
			evs = evs[len(evs)-nevents:]
		}
		fmt.Fprintln(w, "\nEVENTS")
		for _, e := range evs {
			fmt.Fprintf(w, "  %s  %s\n", e.Time.Format("15:04:05.000"), e.String())
		}
	}
}

// rate renders a counter as a per-second rate between samples, or the
// running total when there is no previous sample to diff against.
func rate(cur, prev *shm.TelemetryBlock, c obs.Counter, dt float64) string {
	if prev == nil || dt <= 0 {
		return humanCount(cur.Counters[c])
	}
	d := cur.Counters[c] - prev.Counters[c]
	if d > cur.Counters[c] { // new incarnation reset the shard
		d = cur.Counters[c]
	}
	return humanCount(uint64(float64(d)/dt)) + "/s"
}

func statusName(s uint64) string {
	switch s {
	case layout.ClientSlotFree:
		return "free"
	case layout.ClientAlive:
		return "alive"
	case layout.ClientDead:
		return "DEAD"
	case layout.ClientRecovered:
		return "recovered"
	}
	return fmt.Sprintf("?%d", s)
}

func humanAge(now time.Time, publishedNS int64) string {
	if publishedNS == 0 {
		return "-"
	}
	d := now.Sub(time.Unix(0, publishedNS))
	if d < 0 {
		d = 0
	}
	return d.Truncate(time.Millisecond * 10).String()
}

func humanBytes(n int) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

func humanCount(v uint64) string {
	switch {
	case v >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	}
	return fmt.Sprintf("%d", v)
}

func humanNS(v uint64) string {
	if v == 0 {
		return "-"
	}
	return time.Duration(v).String()
}

// --- Prometheus text exposition ---

// emitProm renders the sample in the Prometheus text format: pool and
// per-client counters, histogram buckets (cumulative, le-labelled), and
// per-slot recovery-timeline gauges. Scrape with
//
//	cxltop -once -prom pool.cxl
//
// under any textfile collector, or wrap in a loop for a push gateway.
func emitProm(w *os.File, s *sample) {
	var b strings.Builder
	writeBlock := func(blk *shm.TelemetryBlock, labels string) {
		for c := obs.Counter(0); c < obs.NumCounters; c++ {
			fmt.Fprintf(&b, "cxlshm_%s_total{%s} %d\n", c.Name(), labels, blk.Counters[c])
		}
		for h := obs.Histo(0); h < obs.NumHistos; h++ {
			var cum uint64
			for i := 0; i < obs.HistBuckets; i++ {
				if blk.Histos[h][i] == 0 {
					continue
				}
				cum += blk.Histos[h][i]
				fmt.Fprintf(&b, "cxlshm_%s_bucket{%s,le=\"%d\"} %d\n",
					h.Name(), labels, obs.BucketUpper(i), cum)
			}
			fmt.Fprintf(&b, "cxlshm_%s_bucket{%s,le=\"+Inf\"} %d\n", h.Name(), labels, cum)
			fmt.Fprintf(&b, "cxlshm_%s_count{%s} %d\n", h.Name(), labels, cum)
		}
	}
	writeBlock(&s.snap.Pool, `scope="pool"`)
	for i := range s.snap.Clients {
		blk := &s.snap.Clients[i]
		writeBlock(blk, fmt.Sprintf(`scope="client",client="%d"`, blk.Index))
	}
	fmt.Fprintf(&b, "cxlshm_clients_alive %d\n", s.usage.ClientsAlive)
	fmt.Fprintf(&b, "cxlshm_clients_dead %d\n", s.usage.ClientsDead)
	fmt.Fprintf(&b, "cxlshm_clients_max %d\n", s.usage.ClientsMax)
	fmt.Fprintf(&b, "cxlshm_segments_free %d\n", s.usage.SegmentsFree)
	fmt.Fprintf(&b, "cxlshm_segments_active %d\n", s.usage.SegmentsActive)
	fmt.Fprintf(&b, "cxlshm_segments_abandoned %d\n", s.usage.SegmentsAbandoned)
	for _, q := range s.queues {
		fmt.Fprintf(&b, "cxlshm_queue_depth{sender=\"%d\",receiver=\"%d\"} %d\n",
			q.Sender, q.Receiver, q.Depth())
	}
	for _, tl := range s.snap.Timelines {
		lbl := fmt.Sprintf(`client="%d"`, tl.Client)
		fmt.Fprintf(&b, "cxlshm_client_deaths_total{%s} %d\n", lbl, tl.Deaths)
		fmt.Fprintf(&b, "cxlshm_client_recoveries_total{%s} %d\n", lbl, tl.Completed)
		if tl.RecoveredNS > 0 {
			fmt.Fprintf(&b, "cxlshm_detect_to_recovered_ns{%s} %d\n", lbl, tl.DurationNS)
		}
	}
	fmt.Fprint(w, b.String())
}
