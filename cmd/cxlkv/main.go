// Command cxlkv demonstrates the shared-everything key-value store (§6.4)
// end to end inside one process: it creates a pool, starts several writer
// and reader clients, kills a writer mid-stream, lets the monitor recover
// it, performs the metadata-only partition takeover, and verifies no data
// was lost — printing a running commentary.
//
// Usage:
//
//	cxlkv [-writers N] [-readers N] [-keys N] [-ops N] [-pool FILE]
//
// With -pool the pool lives on an mmap'd file instead of the heap: point
// `cxltop FILE` at it from another terminal to watch the clients' op
// rates, the writer's death, and its recovery timeline live.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/check"
	"repro/internal/kv"
	"repro/internal/layout"
	"repro/internal/recovery"
	"repro/internal/shm"
	"repro/internal/workload"
)

func main() {
	writers := flag.Int("writers", 2, "writer clients")
	readers := flag.Int("readers", 2, "reader clients")
	keys := flag.Int("keys", 2000, "key space size")
	ops := flag.Int("ops", 20000, "operations per client")
	poolFile := flag.String("pool", "", "back the pool with this mmap'd file (watch it live: cxltop FILE)")
	flag.Parse()

	if err := run(*writers, *readers, *keys, *ops, *poolFile); err != nil {
		fmt.Fprintln(os.Stderr, "cxlkv:", err)
		os.Exit(1)
	}
}

func run(writers, readers, keys, ops int, poolFile string) error {
	pool, err := shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients:   writers + readers + 8,
		NumSegments:  256,
		SegmentWords: 1 << 15,
		PageWords:    1 << 11,
	}, File: poolFile})
	if err != nil {
		return err
	}
	if poolFile != "" {
		fmt.Printf("pool lives in %s — `cxltop %s` in another terminal watches this run\n", poolFile, poolFile)
	}
	svc, err := recovery.NewService(pool)
	if err != nil {
		return err
	}
	creator, err := pool.Connect()
	if err != nil {
		return err
	}
	const buckets = 4096
	if _, err := kv.Create(creator, 0, buckets, 64, writers); err != nil {
		return err
	}
	fmt.Printf("created CXL-KV: %d buckets, %d writer partitions, published at named root 0\n",
		buckets, writers)

	// Preload.
	loader, err := kv.Open(creator, 0)
	if err != nil {
		return err
	}
	val := make([]byte, 64)
	for k := 0; k < keys; k++ {
		val[0] = byte(k)
		if err := loader.Put(uint64(k), val); err != nil {
			return err
		}
	}
	fmt.Printf("preloaded %d keys\n", keys)

	// Writers and readers run concurrently; writer 0 will crash partway.
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	var crashed *shm.Client
	var crashedMu sync.Mutex

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := pool.Connect()
			if err != nil {
				errCh <- err
				return
			}
			s, err := kv.Open(c, 0)
			if err != nil {
				errCh <- err
				return
			}
			s.AcquirePartition(w, true)
			stream, _ := workload.NewKVStream(workload.KVConfig{
				Keys: keys, WriteRatio: 1, Seed: int64(w),
			})
			v := make([]byte, 64)
			for i := 0; i < ops; i++ {
				if w == 0 && i == ops/2 {
					// Simulated process death, mid-operation stream.
					crashedMu.Lock()
					crashed = c
					crashedMu.Unlock()
					errCh <- nil
					return
				}
				k := stream.Next().Key
				if kv.Partition(k, buckets, writers) != w {
					continue // not ours: the single-writer rule
				}
				// In-place update through the zero-copy lease (every key is
				// preloaded); Put only on the insert path.
				err := s.Update(k, func(val []byte) error {
					val[0] = byte(k)
					return nil
				})
				if err == kv.ErrNotFound {
					v[0] = byte(k)
					err = s.Put(k, v)
				}
				if err != nil {
					errCh <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				if i%4096 == 4095 {
					c.Heartbeat() // publishes the counter vector for observers
				}
			}
			c.FlushMetrics()
			errCh <- nil
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := pool.Connect()
			if err != nil {
				errCh <- err
				return
			}
			s, err := kv.Open(c, 0)
			if err != nil {
				errCh <- err
				return
			}
			stream, _ := workload.NewKVStream(workload.KVConfig{
				Keys: keys, WriteRatio: 0, Zipf: 0.9, Seed: int64(100 + r),
			})
			// Reads go through the zero-copy view: the payload is consumed
			// straight from the record's device words, no copy, no per-op
			// allocation.
			var sink byte
			for i := 0; i < ops; i++ {
				k := stream.Next().Key
				err := s.View(k, func(val []byte) error {
					sink ^= val[0]
					return nil
				})
				if err != nil && err != kv.ErrNotFound {
					errCh <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if i%4096 == 4095 {
					c.Heartbeat()
				}
			}
			c.FlushMetrics()
			errCh <- nil
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}

	// Recover the crashed writer: non-blocking for everyone else (they
	// already finished above; in a live deployment they keep running).
	crashedMu.Lock()
	victim := crashed
	crashedMu.Unlock()
	if victim != nil {
		if err := victim.Crash(); err != nil {
			return err
		}
		start := time.Now()
		rep, err := svc.RecoverClient(victim.ID())
		if err != nil {
			return err
		}
		fmt.Printf("writer %d died mid-stream; recovered in %v (swept %d refs, freed %d segments)\n",
			victim.ID(), time.Since(start).Round(time.Microsecond), rep.SweptRoots, rep.SegsFreed)
		// The pool's own record of the death, readable from any process.
		if tl, ok := pool.Telemetry().ReadTimeline(victim.ID()); ok && tl.RecoveredNS > 0 {
			fmt.Printf("telemetry timeline: death #%d reason=%s detect→recovered %v\n",
				tl.Deaths, tl.ReasonName, time.Duration(tl.DurationNS).Round(time.Microsecond))
		}

		// Metadata-only takeover of partition 0.
		taker, err := pool.Connect()
		if err != nil {
			return err
		}
		s, err := kv.Open(taker, 0)
		if err != nil {
			return err
		}
		start = time.Now()
		if !s.AcquirePartition(0, true) {
			return fmt.Errorf("takeover failed")
		}
		fmt.Printf("partition 0 taken over by client %d in %v — no data movement\n",
			taker.ID(), time.Since(start).Round(time.Microsecond))
		v := make([]byte, 64)
		if err := s.Put(0, v); err != nil {
			return fmt.Errorf("takeover writer cannot write: %w", err)
		}
	}

	// Final audit.
	mon := recovery.NewMonitor(svc, recovery.MonitorConfig{})
	for i := 0; i < 3; i++ {
		mon.Tick()
	}
	res := check.Validate(pool)
	fmt.Printf("final audit: %d live objects, %d issues\n", res.AllocatedObjects, len(res.Issues))
	if !res.Clean() {
		for _, is := range res.Issues {
			fmt.Fprintf(os.Stderr, "  %s\n", is)
		}
		return fmt.Errorf("pool validation failed")
	}
	fmt.Println("OK: no leaks, no double frees, no wild pointers")
	return nil
}
