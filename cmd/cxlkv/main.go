// Command cxlkv is the shared-everything key-value store (§6.4) as a real
// serving system.
//
//	cxlkv demo   [flags]   — the original single-process walkthrough
//	cxlkv serve  [flags]   — one worker process: attach a pool file, serve
//	                         GET/PUT/SCAN over loopback TCP
//	cxlkv chaos  [flags]   — orchestrate N workers (in-process or child OS
//	                         processes on an mmap pool file), drive zipfian
//	                         traffic, kill one mid-stream, measure recovery
//	cxlkv drive  [flags]   — standalone load driver against running workers
//
// Running cxlkv with no subcommand (or with old-style flags) is the demo,
// unchanged. The chaos orchestrator is what `make bench-serving` runs to
// produce BENCH_serving.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/check"
	"repro/internal/kv"
	"repro/internal/layout"
	"repro/internal/netrpc"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/serving"
	"repro/internal/shm"
	"repro/internal/workload"
)

func main() {
	args := os.Args[1:]
	cmd := "demo"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	var err error
	switch cmd {
	case "demo":
		err = demoCmd(args)
	case "serve":
		err = serveCmd(args)
	case "chaos":
		err = chaosCmd(args)
	case "drive":
		err = driveCmd(args)
	default:
		err = fmt.Errorf("unknown subcommand %q (want demo, serve, chaos, or drive)", cmd)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cxlkv:", err)
		os.Exit(1)
	}
}

// --- serve: one worker process ---

func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	poolFile := fs.String("pool", "", "mmap pool file to attach (required)")
	root := fs.Int("root", 0, "named-root slot of the kv index")
	parts := fs.String("partitions", "", "comma-separated writer partitions to acquire")
	steal := fs.Bool("steal", false, "steal partitions from dead writers")
	hb := fs.Duration("hb", 2*time.Millisecond, "heartbeat cadence")
	fs.Parse(args)
	if *poolFile == "" {
		return fmt.Errorf("serve: -pool is required")
	}
	var partitions []int
	if *parts != "" {
		for _, s := range strings.Split(*parts, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("serve: bad partition %q", s)
			}
			partitions = append(partitions, p)
		}
	}
	w, err := serving.StartWorkerFile(*poolFile, serving.WorkerConfig{
		RootSlot:       *root,
		Partitions:     partitions,
		Steal:          *steal,
		HeartbeatEvery: *hb,
		Net:            servingNet(),
	})
	if err != nil {
		return err
	}
	// The orchestrator (or operator) waits for this exact line.
	fmt.Println(serving.ReadyLine(w.Addr(), w.CID()))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-w.QuitRequested():
	case <-sig:
	}
	return w.Stop()
}

// servingNet is the serving tier's hardened transport config: bounded
// frames, mid-frame and write deadlines. Idle connections stay open — a
// quiet driver is not a hostile peer.
func servingNet() netrpc.Config {
	return netrpc.Config{
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
}

// --- chaos: the orchestrated kill-and-recover run ---

func chaosCmd(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	workers := fs.Int("workers", 3, "serving workers (= writer partitions)")
	keys := fs.Int("keys", 100_000, "key space size")
	valSize := fs.Int("val", 64, "value size in bytes")
	writeRatio := fs.Float64("write-ratio", 0.3, "fraction of writes")
	zipf := fs.Float64("zipf", 0.99, "YCSB zipfian constant θ")
	conns := fs.Int("conns", 4, "driver connections")
	ops := fs.Int("ops", 12_500, "operations per connection")
	scanEvery := fs.Int("scan-every", 128, "every Nth op is a batch scan (0 disables)")
	scanSpan := fs.Int("scan-span", 64, "records per scan")
	seed := fs.Int64("seed", 1, "workload seed")
	kill := fs.Bool("kill", true, "kill one worker mid-traffic")
	backend := fs.String("backend", "proc", "proc: child OS processes on an mmap pool file; inproc: workers in this process (heap pool)")
	poolFile := fs.String("pool", "", "pool file path (proc backend; default: temp file, removed after)")
	out := fs.String("out", "", "write BENCH_serving.json here")
	compare := fs.String("compare", "", "compare this run against the baseline BENCH_serving.json at this path and fail on regression")
	fs.Parse(args)

	cfg := serving.ChaosConfig{
		Workers: *workers, Keys: *keys, ValSize: *valSize,
		WriteRatio: *writeRatio, Zipf: *zipf,
		Conns: *conns, OpsPerConn: *ops,
		ScanEvery: *scanEvery, ScanSpan: *scanSpan,
		Seed: *seed, Kill: *kill,
		Net: servingNet(),
	}

	var pool *shm.Pool
	var spawn serving.Spawner
	switch *backend {
	case "inproc":
		p, err := shm.NewPool(shm.Config{Geometry: serving.SizeGeometry(cfg)})
		if err != nil {
			return err
		}
		pool, spawn = p, serving.InProcSpawner(p)

	case "proc":
		path := *poolFile
		if path == "" {
			f, err := os.CreateTemp("", "cxlkv-serving-*.pool")
			if err != nil {
				return err
			}
			path = f.Name()
			f.Close()
			os.Remove(path) // CreateMapDevice wants to create it itself
			defer os.Remove(path)
		}
		p, err := shm.NewPool(shm.Config{Geometry: serving.SizeGeometry(cfg), File: path})
		if err != nil {
			return err
		}
		exe, err := os.Executable()
		if err != nil {
			return err
		}
		pool = p
		spawn = serving.ExecSpawner(servingNet(), func(idx int) *exec.Cmd {
			return exec.Command(exe, "serve",
				"-pool", path,
				"-root", "0",
				"-partitions", strconv.Itoa(idx),
				"-hb", cfg.HeartbeatEvery.String())
		})
		fmt.Fprintf(os.Stderr, "chaos: %d worker processes on pool file %s\n", *workers, path)

	default:
		return fmt.Errorf("chaos: unknown backend %q (want proc or inproc)", *backend)
	}
	defer pool.CloseDevice()
	// ExecSpawner children format their heartbeat cadence into argv; pin
	// it before the config's fill() does.
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = 2 * time.Millisecond
	}

	res, err := serving.RunChaos(pool, spawn, cfg)
	if err != nil {
		return err
	}
	printChaos(res)

	if *out != "" {
		bench := &serving.ServingBench{
			Provenance: obs.CollectProvenance("cxlkv chaos", *backend),
			Run:        res,
		}
		if err := bench.Write(*out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if res.SurvivorErrors != 0 || res.LostWrites != 0 || res.Corruptions != 0 || !res.FsckClean {
		return fmt.Errorf("chaos invariants violated (survivor_errors=%d lost=%d corrupt=%d fsck_clean=%v)",
			res.SurvivorErrors, res.LostWrites, res.Corruptions, res.FsckClean)
	}
	if *compare != "" {
		base, err := serving.LoadBench(*compare)
		if err != nil {
			return err
		}
		cur := &serving.ServingBench{Run: res}
		if bad := serving.Compare(base, cur); len(bad) > 0 {
			for _, b := range bad {
				fmt.Fprintf(os.Stderr, "serving-compare: %s\n", b)
			}
			return fmt.Errorf("serving regressed against %s (%d gates failed)", *compare, len(bad))
		}
		fmt.Printf("serving-compare: within gates of %s\n", *compare)
	}
	return nil
}

func printChaos(r *serving.ChaosResult) {
	fmt.Printf("serving: %d workers, %d keys × %dB, θ=%v, write ratio %v\n",
		r.Workers, r.Keys, r.ValSize, r.Zipf, r.WriteRatio)
	fmt.Printf("  %d ops in %v (%.0f ops/s)\n",
		r.Ops, time.Duration(r.WallNS).Round(time.Millisecond), r.OpsPerSec)
	fmt.Printf("  read  p50 %v  p99 %v\n", fmtNS(r.ReadP50NS), fmtNS(r.ReadP99NS))
	fmt.Printf("  write p50 %v  p99 %v\n", fmtNS(r.WriteP50NS), fmtNS(r.WriteP99NS))
	if r.ScanP99NS > 0 {
		fmt.Printf("  scan  p50 %v  p99 %v\n", fmtNS(r.ScanP50NS), fmtNS(r.ScanP99NS))
	}
	if r.Killed {
		fmt.Printf("  chaos: worker %d (cid %d) killed mid-traffic\n", r.VictimWorker, r.VictimCID)
		fmt.Printf("    detect→recovered %v (telemetry %v)  takeover %v  disruption %v\n",
			fmtNS(r.DetectToRecoveredNS), fmtNS(r.TimelineDetectToRecNS),
			fmtNS(r.TakeoverNS), fmtNS(r.DisruptionNS))
		fmt.Printf("    window p99 %v  victim errors %d  stalled writes %d  rerouted %d\n",
			fmtNS(r.WindowP99NS), r.VictimErrors, r.StalledWrites, r.Rerouted)
	}
	fmt.Printf("  invariants: survivor errors %d, lost writes %d, corruptions %d, fsck clean %v\n",
		r.SurvivorErrors, r.LostWrites, r.Corruptions, r.FsckClean)
}

func fmtNS(ns int64) time.Duration {
	return time.Duration(ns).Round(time.Microsecond)
}

// --- drive: standalone driver against already-running workers ---

func driveCmd(args []string) error {
	fs := flag.NewFlagSet("drive", flag.ExitOnError)
	addrsFlag := fs.String("addrs", "", "comma-separated worker addresses, partition order (required)")
	keys := fs.Int("keys", 100_000, "key space size")
	writeRatio := fs.Float64("write-ratio", 0.3, "fraction of writes")
	zipf := fs.Float64("zipf", 0.99, "YCSB zipfian constant θ")
	conns := fs.Int("conns", 8, "driver connections")
	ops := fs.Int("ops", 50_000, "operations per connection")
	scanEvery := fs.Int("scan-every", 0, "every Nth op is a batch scan")
	scanSpan := fs.Int("scan-span", 64, "records per scan")
	seed := fs.Int64("seed", 1, "workload seed")
	preload := fs.Bool("preload", false, "store every key through the serving path first")
	fs.Parse(args)
	if *addrsFlag == "" {
		return fmt.Errorf("drive: -addrs is required")
	}
	addrs := strings.Split(*addrsFlag, ",")

	// The workers know the store shape; ask instead of guessing.
	probe, err := serving.DialWorker(strings.TrimSpace(addrs[0]), servingNet())
	if err != nil {
		return err
	}
	st, err := probe.Stats()
	probe.Close()
	if err != nil {
		return err
	}
	if st.Writers != len(addrs) {
		return fmt.Errorf("drive: store has %d partitions but %d addresses given", st.Writers, len(addrs))
	}

	d, err := serving.NewDriver(addrs, serving.DriverConfig{
		Keys: *keys, ValSize: st.ValSize,
		Buckets: st.Buckets, Writers: st.Writers,
		WriteRatio: *writeRatio, Zipf: *zipf,
		Conns: *conns, OpsPerConn: *ops,
		ScanEvery: *scanEvery, ScanSpan: *scanSpan,
		Seed: *seed, Net: servingNet(),
	})
	if err != nil {
		return err
	}
	if *preload {
		fmt.Fprintf(os.Stderr, "preloading %d keys...\n", *keys)
		if err := d.Preload(); err != nil {
			return err
		}
	}
	rep, err := d.Run()
	if err != nil {
		return err
	}
	fmt.Printf("%d ops in %v (%.0f ops/s): %d reads, %d writes, %d scans\n",
		rep.Ops, rep.Wall.Round(time.Millisecond),
		float64(rep.Ops)/rep.Wall.Seconds(), rep.Reads, rep.Writes, rep.Scans)
	fmt.Printf("read  p50 %v  p99 %v\n", fmtNS(rep.Read.Percentile(0.5)), fmtNS(rep.Read.Percentile(0.99)))
	fmt.Printf("write p50 %v  p99 %v\n", fmtNS(rep.Write.Percentile(0.5)), fmtNS(rep.Write.Percentile(0.99)))
	if rep.Scans > 0 {
		fmt.Printf("scan  p50 %v  p99 %v\n", fmtNS(rep.Scan.Percentile(0.5)), fmtNS(rep.Scan.Percentile(0.99)))
	}
	if rep.SurvivorErrors+rep.VictimErrors+rep.Corruptions > 0 {
		return fmt.Errorf("drive: %d errors, %d corruptions", rep.SurvivorErrors+rep.VictimErrors, rep.Corruptions)
	}
	return nil
}

// --- demo: the original single-process walkthrough, unchanged ---

func demoCmd(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	writers := fs.Int("writers", 2, "writer clients")
	readers := fs.Int("readers", 2, "reader clients")
	keys := fs.Int("keys", 2000, "key space size")
	ops := fs.Int("ops", 20000, "operations per client")
	poolFile := fs.String("pool", "", "back the pool with this mmap'd file (watch it live: cxltop FILE)")
	fs.Parse(args)
	return demo(*writers, *readers, *keys, *ops, *poolFile)
}

func demo(writers, readers, keys, ops int, poolFile string) error {
	pool, err := shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients:   writers + readers + 8,
		NumSegments:  256,
		SegmentWords: 1 << 15,
		PageWords:    1 << 11,
	}, File: poolFile})
	if err != nil {
		return err
	}
	if poolFile != "" {
		fmt.Printf("pool lives in %s — `cxltop %s` in another terminal watches this run\n", poolFile, poolFile)
	}
	svc, err := recovery.NewService(pool)
	if err != nil {
		return err
	}
	creator, err := pool.Connect()
	if err != nil {
		return err
	}
	const buckets = 4096
	if _, err := kv.Create(creator, 0, buckets, 64, writers); err != nil {
		return err
	}
	fmt.Printf("created CXL-KV: %d buckets, %d writer partitions, published at named root 0\n",
		buckets, writers)

	// Preload.
	loader, err := kv.Open(creator, 0)
	if err != nil {
		return err
	}
	val := make([]byte, 64)
	for k := 0; k < keys; k++ {
		val[0] = byte(k)
		if err := loader.Put(uint64(k), val); err != nil {
			return err
		}
	}
	fmt.Printf("preloaded %d keys\n", keys)

	// Writers and readers run concurrently; writer 0 will crash partway.
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	var crashed *shm.Client
	var crashedMu sync.Mutex

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := pool.Connect()
			if err != nil {
				errCh <- err
				return
			}
			s, err := kv.Open(c, 0)
			if err != nil {
				errCh <- err
				return
			}
			s.AcquirePartition(w, true)
			stream, _ := workload.NewKVStream(workload.KVConfig{
				Keys: keys, WriteRatio: 1, Seed: int64(w),
			})
			v := make([]byte, 64)
			for i := 0; i < ops; i++ {
				if w == 0 && i == ops/2 {
					// Simulated process death, mid-operation stream.
					crashedMu.Lock()
					crashed = c
					crashedMu.Unlock()
					errCh <- nil
					return
				}
				k := stream.Next().Key
				if kv.Partition(k, buckets, writers) != w {
					continue // not ours: the single-writer rule
				}
				// In-place update through the zero-copy lease (every key is
				// preloaded); Put only on the insert path.
				err := s.Update(k, func(val []byte) error {
					val[0] = byte(k)
					return nil
				})
				if err == kv.ErrNotFound {
					v[0] = byte(k)
					err = s.Put(k, v)
				}
				if err != nil {
					errCh <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				if i%4096 == 4095 {
					c.Heartbeat() // publishes the counter vector for observers
				}
			}
			c.FlushMetrics()
			errCh <- nil
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := pool.Connect()
			if err != nil {
				errCh <- err
				return
			}
			s, err := kv.Open(c, 0)
			if err != nil {
				errCh <- err
				return
			}
			stream, _ := workload.NewKVStream(workload.KVConfig{
				Keys: keys, WriteRatio: 0, Zipf: 0.9, Seed: int64(100 + r),
			})
			// Reads go through the zero-copy view: the payload is consumed
			// straight from the record's device words, no copy, no per-op
			// allocation.
			var sink byte
			for i := 0; i < ops; i++ {
				k := stream.Next().Key
				err := s.View(k, func(val []byte) error {
					sink ^= val[0]
					return nil
				})
				if err != nil && err != kv.ErrNotFound {
					errCh <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if i%4096 == 4095 {
					c.Heartbeat()
				}
			}
			c.FlushMetrics()
			errCh <- nil
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}

	// Recover the crashed writer: non-blocking for everyone else (they
	// already finished above; in a live deployment they keep running).
	crashedMu.Lock()
	victim := crashed
	crashedMu.Unlock()
	if victim != nil {
		if err := victim.Crash(); err != nil {
			return err
		}
		start := time.Now()
		rep, err := svc.RecoverClient(victim.ID())
		if err != nil {
			return err
		}
		fmt.Printf("writer %d died mid-stream; recovered in %v (swept %d refs, freed %d segments)\n",
			victim.ID(), time.Since(start).Round(time.Microsecond), rep.SweptRoots, rep.SegsFreed)
		// The pool's own record of the death, readable from any process.
		if tl, ok := pool.Telemetry().ReadTimeline(victim.ID()); ok && tl.RecoveredNS > 0 {
			fmt.Printf("telemetry timeline: death #%d reason=%s detect→recovered %v\n",
				tl.Deaths, tl.ReasonName, time.Duration(tl.DurationNS).Round(time.Microsecond))
		}

		// Metadata-only takeover of partition 0.
		taker, err := pool.Connect()
		if err != nil {
			return err
		}
		s, err := kv.Open(taker, 0)
		if err != nil {
			return err
		}
		start = time.Now()
		if !s.AcquirePartition(0, true) {
			return fmt.Errorf("takeover failed")
		}
		fmt.Printf("partition 0 taken over by client %d in %v — no data movement\n",
			taker.ID(), time.Since(start).Round(time.Microsecond))
		v := make([]byte, 64)
		if err := s.Put(0, v); err != nil {
			return fmt.Errorf("takeover writer cannot write: %w", err)
		}
	}

	// Final audit.
	mon := recovery.NewMonitor(svc, recovery.MonitorConfig{})
	for i := 0; i < 3; i++ {
		mon.Tick()
	}
	res := check.Validate(pool)
	fmt.Printf("final audit: %d live objects, %d issues\n", res.AllocatedObjects, len(res.Issues))
	if !res.Clean() {
		for _, is := range res.Issues {
			fmt.Fprintf(os.Stderr, "  %s\n", is)
		}
		return fmt.Errorf("pool validation failed")
	}
	fmt.Println("OK: no leaks, no double frees, no wild pointers")
	return nil
}
