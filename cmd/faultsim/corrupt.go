// The -corrupt mode: drive the corruption campaign (internal/sweep) over
// one or both backends and emit BENCH_resilience.json — repair success
// rate and blast-radius distribution per fault class.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// classSummary aggregates one fault class's trials on one backend.
type classSummary struct {
	Trials      int `json:"trials"`
	Repaired    int `json:"repaired"`
	Quarantined int `json:"quarantined"`
	Benign      int `json:"benign"`
	Violations  int `json:"violations"`

	// Blast-radius distribution across the class's trials.
	Blast struct {
		TotalWordsRewritten int            `json:"total_words_rewritten"`
		MaxWordsRewritten   int            `json:"max_words_rewritten"`
		ObjectsRepaired     int            `json:"objects_repaired"`
		ObjectsQuarantined  int            `json:"objects_quarantined"`
		PagesQuarantined    int            `json:"pages_quarantined"`
		ObjectsLost         int            `json:"objects_lost"`
		RefsSevered         int            `json:"refs_severed"`
		WordsHistogram      map[string]int `json:"words_rewritten_histogram"`
		PerRegionWords      map[string]int `json:"per_region_words_rewritten"`
	} `json:"blast"`
}

// resilienceBackend is one backend's full campaign result.
type resilienceBackend struct {
	Classes map[string]*classSummary `json:"classes"`
	Trials  []sweep.CorruptTrial     `json:"trials"`
}

type resilienceReport struct {
	Provenance *obs.Provenance              `json:"provenance"`
	Seed       int64                        `json:"seed"`
	Backends   map[string]resilienceBackend `json:"backends"`
}

func runCorrupt(seed int64, regionSpec, classSpec, out string) error {
	var regions []faultinject.Region
	for _, s := range splitSpec(regionSpec) {
		r, err := faultinject.ParseRegion(s)
		if err != nil {
			return err
		}
		regions = append(regions, r)
	}
	var classes []faultinject.Class
	for _, s := range splitSpec(classSpec) {
		c, err := faultinject.ParseClass(s)
		if err != nil {
			return err
		}
		classes = append(classes, c)
	}

	backends := []string{"heap", "mmap"}
	if backend != "" {
		backends = []string{backend}
	}

	report := resilienceReport{
		Seed:     seed,
		Backends: map[string]resilienceBackend{},
	}
	violations := 0
	for _, be := range backends {
		fmt.Printf("-- corruption campaign: backend %s --\n", be)
		trials, vs, err := sweep.RunCorrupt(sweep.CorruptConfig{
			Backend: be,
			Seed:    seed,
			Regions: regions,
			Classes: classes,
			Log: func(format string, args ...any) {
				fmt.Printf("  "+format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		rb := resilienceBackend{Classes: map[string]*classSummary{}, Trials: trials}
		for _, tr := range trials {
			cs := rb.Classes[tr.Class]
			if cs == nil {
				cs = &classSummary{}
				cs.Blast.WordsHistogram = map[string]int{}
				cs.Blast.PerRegionWords = map[string]int{}
				rb.Classes[tr.Class] = cs
			}
			cs.Trials++
			switch tr.Outcome {
			case "repaired":
				cs.Repaired++
			case "quarantined":
				cs.Quarantined++
			case "benign":
				cs.Benign++
			case "violation":
				cs.Violations++
			}
			b := tr.Blast
			cs.Blast.TotalWordsRewritten += b.WordsRewritten
			if b.WordsRewritten > cs.Blast.MaxWordsRewritten {
				cs.Blast.MaxWordsRewritten = b.WordsRewritten
			}
			cs.Blast.ObjectsRepaired += b.ObjectsRepaired
			cs.Blast.ObjectsQuarantined += b.ObjectsQuarantined
			cs.Blast.PagesQuarantined += b.PagesQuarantined
			cs.Blast.ObjectsLost += b.ObjectsLost
			cs.Blast.RefsSevered += b.RefsSevered
			cs.Blast.WordsHistogram[wordsBucket(b.WordsRewritten)]++
			cs.Blast.PerRegionWords[tr.Region] += b.WordsRewritten
		}
		report.Backends[be] = rb
		for _, v := range vs {
			fmt.Fprintf(os.Stderr, "VIOLATION %s\n", v)
		}
		violations += len(vs)
		for class, cs := range rb.Classes {
			fmt.Printf("  %s: %d trials — %d repaired, %d quarantined, %d benign, %d violations (max blast %d words)\n",
				class, cs.Trials, cs.Repaired, cs.Quarantined, cs.Benign, cs.Violations,
				cs.Blast.MaxWordsRewritten)
		}
	}

	if out != "" {
		prov := obs.CollectProvenance("faultsim -corrupt", strings.Join(backends, ","))
		prov.LayoutVersion = layout.LayoutVersion
		prov.MaxClients = 8
		prov.NumSegments = 16
		prov.SegmentWords = 1 << 13
		prov.PageWords = 1 << 9
		prov.MaxQueues = 8
		report.Provenance = prov
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("resilience report written to %s\n", out)
	}
	if violations > 0 {
		return fmt.Errorf("corruption campaign: %d violations", violations)
	}
	return nil
}

// wordsBucket maps a blast radius (words rewritten) to a log-ish histogram
// bucket so the distribution survives JSON without carrying raw samples.
func wordsBucket(n int) string {
	switch {
	case n == 0:
		return "0"
	case n <= 2:
		return "1-2"
	case n <= 8:
		return "3-8"
	case n <= 32:
		return "9-32"
	case n <= 128:
		return "33-128"
	default:
		return ">128"
	}
}

func splitSpec(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
