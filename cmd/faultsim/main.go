// Command faultsim runs the crash-consistency fault-injection campaign of
// the paper's §6.2.2: a workload of allocations, releases, reference
// exchanges, and embedded-reference updates is executed with a crash
// injected at a random critical point; after recovery the whole pool is
// validated for leaks, double frees, and wild pointers. The paper runs
// >100k trials; pick -trials to taste.
//
// Usage:
//
//	faultsim [-trials N] [-seed S] [-systematic] [-backend heap|mmap]
//	faultsim -sweep [-max-writes N] [-recovery-sweep] [-backend heap|mmap]
//	faultsim -repro "op=NAME access=N [epoch=T] [recovery-access=R]" [-backend heap|mmap]
//
// -backend mmap runs every trial on an mmap'd-file device (cxl.MapDevice),
// exercising crash recovery over the cross-process backend's data path.
//
// -sweep replaces the named-point campaign with the exhaustive
// access-granular one (internal/sweep): every device write of every scripted
// operation is a crash position, each followed by recovery and a full-pool
// fsck. Violations print a minimal -repro invocation and exit nonzero.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/check"
	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/shm"
	"repro/internal/sweep"
)

func main() {
	trials := flag.Int("trials", 2000, "randomized trials to run")
	seed := flag.Int64("seed", 1, "base RNG seed")
	systematic := flag.Bool("systematic", false, "also crash at every occurrence of every crash point")
	metrics := flag.Bool("metrics", false, "collect pool metrics; write FAULTSIM_metrics.json and print a summary")
	doSweep := flag.Bool("sweep", false, "run the exhaustive access-granular crash sweep instead of trials")
	doCorrupt := flag.Bool("corrupt", false, "run the corruption campaign (bit flips, torn writes, stuck CAS) with repair")
	region := flag.String("region", "", "with -corrupt: restrict to one region (comma-separated ok; empty = all)")
	class := flag.String("class", "", "with -corrupt: restrict to one fault class (comma-separated ok; empty = all)")
	resilienceOut := flag.String("resilience-out", "BENCH_resilience.json", "with -corrupt: write the resilience report here (empty = skip)")
	maxWrites := flag.Int("max-writes", 0, "with -sweep: bound crash positions per operation (0 = every write)")
	recoverySweep := flag.Bool("recovery-sweep", false, "with -sweep: also crash the recovery pass at each of its own writes")
	clients := flag.Int("clients", 0, "with -sweep: size of the client-slot table (0 = default 8)")
	repro := flag.String("repro", "", `reproduce one sweep position: "op=NAME access=N [epoch=T] [recovery-access=R]"`)
	flag.StringVar(&backend, "backend", "", "device backend per trial: heap (default) or mmap")
	flag.Parse()
	if *metrics {
		obs.EnableGlobal()
	}

	if *doCorrupt {
		if err := runCorrupt(*seed, *region, *class, *resilienceOut); err != nil {
			fail(err)
		}
		return
	}

	if *doSweep || *repro != "" {
		cfg := sweep.Config{
			Backend:       backend,
			MaxWrites:     *maxWrites,
			RecoverySweep: *recoverySweep,
			Clients:       *clients,
			Log: func(format string, args ...any) {
				fmt.Printf("  "+format+"\n", args...)
			},
		}
		if *repro != "" {
			if err := parseRepro(*repro, &cfg); err != nil {
				fail(err)
			}
		}
		vs, st, err := sweep.Run(cfg)
		if err != nil {
			fail(err)
		}
		for _, v := range vs {
			fmt.Fprintf(os.Stderr, "VIOLATION %s\n", v)
		}
		if len(vs) > 0 {
			fail(fmt.Errorf("sweep: %d violations", len(vs)))
		}
		fmt.Printf("sweep: %d ops, %d crash positions (+%d recovery positions) — all recovered and validated clean\n",
			st.Ops, st.Positions, st.RecoveryPositions)
		if *metrics {
			writeMetrics(false)
		}
		return
	}

	crashes, clean := 0, 0
	if *systematic {
		n, err := runSystematic()
		if err != nil {
			fail(err)
		}
		fmt.Printf("systematic: %d crash positions, all recovered cleanly\n", n)
	}
	for t := 0; t < *trials; t++ {
		crashed, err := runTrial(*seed + int64(t))
		if err != nil {
			fail(fmt.Errorf("trial %d: %w", t, err))
		}
		if crashed {
			crashes++
		} else {
			clean++
		}
		if (t+1)%500 == 0 {
			fmt.Printf("  %d trials (%d crashed, %d clean) — no leak/double-free/wild-pointer\n",
				t+1, crashes, clean)
		}
	}
	fmt.Printf("randomized: %d trials, %d with injected crashes, %d crash-free — all validated clean\n",
		*trials, crashes, clean)
	if *metrics {
		writeMetrics(true)
	}
}

// writeMetrics dumps the campaign-wide metrics snapshot, stamped with the
// provenance (backend, geometry, layout version, build) that produced it.
// Sweep mode builds pools with its own per-op geometry, so only the trials
// campaign records the pool shape.
func writeMetrics(withGeometry bool) {
	snap := obs.GlobalSnapshot()
	fmt.Println("-- metrics (all trials) --")
	snap.WriteSummary(os.Stdout)
	prov := obs.CollectProvenance("faultsim", backendName())
	prov.LayoutVersion = layout.LayoutVersion
	if withGeometry {
		prov.MaxClients = 8
		prov.NumSegments = 16
		prov.SegmentWords = 1 << 13
		prov.PageWords = 1 << 9
		prov.MaxQueues = 8
	}
	data, err := obs.MarshalReportJSON(snap, nil, prov)
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile("FAULTSIM_metrics.json", data, 0o644); err != nil {
		fail(err)
	}
	fmt.Println("metrics snapshot written to FAULTSIM_metrics.json")
}

func backendName() string {
	if backend == "" {
		return "heap"
	}
	return backend
}

// backend selects the per-trial device backend (-backend flag).
var backend string

func newPool() (*shm.Pool, error) {
	return shm.NewPool(shm.Config{
		Geometry: layout.GeometryConfig{
			MaxClients: 8, NumSegments: 16, SegmentWords: 1 << 13, PageWords: 1 << 9, MaxQueues: 8,
		},
		Backend: backend,
	})
}

// workload mirrors the recovery test scenario: every crash point is
// exercised (see internal/recovery's occurrence audit).
func workload(x, o *shm.Client) ([]layout.Addr, error) {
	var oRoots []layout.Addr
	r1, _, err := x.Malloc(64, 0)
	if err != nil {
		return oRoots, err
	}
	x.CloneRoot(r1)
	if _, err := x.ReleaseRoot(r1); err != nil {
		return oRoots, err
	}
	if _, err := x.ReleaseRoot(r1); err != nil {
		return oRoots, err
	}
	rh, _, err := x.Malloc(96*1024, 0)
	if err != nil {
		return oRoots, err
	}
	if _, err := x.ReleaseRoot(rh); err != nil {
		return oRoots, err
	}
	rp, parent, err := x.Malloc(64, 2)
	if err != nil {
		return oRoots, err
	}
	rc1, ch1, err := x.Malloc(32, 0)
	if err != nil {
		return oRoots, err
	}
	if err := x.SetEmbed(parent, 0, ch1); err != nil {
		return oRoots, err
	}
	x.ReleaseRoot(rc1)
	rc2, ch2, err := x.Malloc(32, 1)
	if err != nil {
		return oRoots, err
	}
	rg, gch, err := x.Malloc(16, 0)
	if err != nil {
		return oRoots, err
	}
	if err := x.SetEmbed(ch2, 0, gch); err != nil {
		return oRoots, err
	}
	x.ReleaseRoot(rg)
	if err := x.SetEmbed(parent, 1, ch2); err != nil {
		return oRoots, err
	}
	x.ReleaseRoot(rc2)
	ry, y, err := x.Malloc(32, 0)
	if err != nil {
		return oRoots, err
	}
	if err := x.ChangeEmbed(parent, 0, y); err != nil {
		return oRoots, err
	}
	x.ReleaseRoot(ry)
	x.ReleaseRoot(rp)

	qr, q, err := x.CreateQueue(o.ID(), 4)
	if err != nil {
		return oRoots, err
	}
	oq, err := o.OpenQueue(q)
	if err != nil {
		return oRoots, err
	}
	oRoots = append(oRoots, oq)
	ro1, o1, err := x.Malloc(64, 0)
	if err != nil {
		return oRoots, err
	}
	if err := x.Send(q, o1); err != nil {
		return oRoots, err
	}
	x.ReleaseRoot(ro1)
	rb, _, err := o.Receive(q)
	if err != nil {
		return oRoots, err
	}
	oRoots = append(oRoots, rb)

	// Batched legs: SendBatch/ReceiveBatch walk the same per-slot crash
	// points as Send/Receive but with one tail/head publication per batch —
	// a crash mid-batch strands a different prefix of slots.
	var batch []layout.Addr
	var batchRoots []layout.Addr
	for i := 0; i < 3; i++ {
		r, b, err := x.Malloc(64, 0)
		if err != nil {
			return oRoots, err
		}
		batchRoots = append(batchRoots, r)
		batch = append(batch, b)
	}
	n, err := x.SendBatch(q, batch)
	if err != nil {
		return oRoots, err
	}
	if n != len(batch) {
		return oRoots, fmt.Errorf("short batch send: %d of %d", n, len(batch))
	}
	for _, r := range batchRoots {
		if _, err := x.ReleaseRoot(r); err != nil {
			return oRoots, err
		}
	}
	broots, _, err := o.ReceiveBatch(q, 4)
	if err != nil {
		return oRoots, err
	}
	if len(broots) != n {
		return oRoots, fmt.Errorf("short batch receive: %d of %d", len(broots), n)
	}
	oRoots = append(oRoots, broots...)
	x.ReleaseRoot(qr)

	qr2, q2, err := o.CreateQueue(x.ID(), 4)
	if err != nil {
		return oRoots, err
	}
	oRoots = append(oRoots, qr2)
	xq, err := x.OpenQueue(q2)
	if err != nil {
		return oRoots, err
	}
	ro3, o3, err := o.Malloc(64, 0)
	if err != nil {
		return oRoots, err
	}
	if err := o.Send(q2, o3); err != nil {
		return oRoots, err
	}
	o.ReleaseRoot(ro3)
	rx, _, err := x.Receive(q2)
	if err != nil {
		return oRoots, err
	}
	x.ReleaseRoot(rx)
	x.ReleaseRoot(xq)

	ro4, o4, err := o.Malloc(64, 0)
	if err != nil {
		return oRoots, err
	}
	xr4, err := x.OpenQueue(o4)
	if err != nil {
		return oRoots, err
	}
	o.ReleaseRoot(ro4)
	x.ReleaseRoot(xr4)
	return oRoots, nil
}

func runTrial(seed int64) (crashed bool, err error) {
	p, err := newPool()
	if err != nil {
		return false, err
	}
	defer p.CloseDevice()
	x, err := p.Connect()
	if err != nil {
		return false, err
	}
	o, err := p.Connect()
	if err != nil {
		return false, err
	}
	svc, err := recovery.NewService(p)
	if err != nil {
		return false, err
	}
	x.SetInjector(faultinject.Random(seed, 0.005))
	var oRoots []layout.Addr
	var werr error
	crash := faultinject.Run(func() { oRoots, werr = workload(x, o) })
	if crash == nil && werr != nil {
		return false, werr
	}
	if crash != nil {
		if err := p.MarkClientDead(x.ID()); err != nil {
			return true, err
		}
		if _, err := svc.RecoverClient(x.ID()); err != nil {
			return true, err
		}
	}
	for _, r := range oRoots {
		if _, err := o.ReleaseRoot(r); err != nil {
			return crash != nil, fmt.Errorf("survivor release: %w", err)
		}
	}
	// Publish the short-lived clients' counters for -metrics before the
	// monitor fences them (a fenced client's shard is frozen as-is).
	x.FlushMetrics()
	o.FlushMetrics()
	mon := recovery.NewMonitor(svc, recovery.MonitorConfig{})
	for i := 0; i < 4; i++ {
		mon.Tick()
	}
	res := check.Validate(p)
	if !res.Clean() {
		for _, is := range res.Issues {
			fmt.Fprintf(os.Stderr, "  %s\n", is)
		}
		return crash != nil, fmt.Errorf("validation failed with %d issues (crash=%v)", len(res.Issues), crash)
	}
	if res.AllocatedObjects != 0 {
		return crash != nil, fmt.Errorf("%d objects leaked (crash=%v)", res.AllocatedObjects, crash)
	}
	return crash != nil, nil
}

func runSystematic() (int, error) {
	positions := 0
	for _, pt := range faultinject.AllPoints {
		for occ := 1; ; occ++ {
			p, err := newPool()
			if err != nil {
				return positions, err
			}
			x, err := p.Connect()
			if err != nil {
				return positions, err
			}
			o, err := p.Connect()
			if err != nil {
				return positions, err
			}
			svc, err := recovery.NewService(p)
			if err != nil {
				return positions, err
			}
			inj := faultinject.At(pt, occ)
			x.SetInjector(inj)
			var oRoots []layout.Addr
			var werr error
			crash := faultinject.Run(func() { oRoots, werr = workload(x, o) })
			if crash == nil {
				p.CloseDevice()
				if werr != nil {
					return positions, werr
				}
				break // all occurrences of this point covered
			}
			positions++
			if err := p.MarkClientDead(x.ID()); err != nil {
				return positions, err
			}
			if _, err := svc.RecoverClient(x.ID()); err != nil {
				return positions, err
			}
			for _, r := range oRoots {
				if _, err := o.ReleaseRoot(r); err != nil {
					return positions, err
				}
			}
			mon := recovery.NewMonitor(svc, recovery.MonitorConfig{})
			for i := 0; i < 4; i++ {
				mon.Tick()
			}
			res := check.Validate(p)
			if !res.Clean() || res.AllocatedObjects != 0 {
				return positions, fmt.Errorf("%s occurrence %d: validation failed", pt, occ)
			}
			p.CloseDevice()
			if occ > 200 {
				return positions, fmt.Errorf("%s: runaway occurrence count", pt)
			}
		}
	}
	return positions, nil
}

// parseRepro fills cfg from a sweep violation's repro spec, e.g.
// "op=send access=18" or "op=free-huge access=1 recovery-access=12".
func parseRepro(spec string, cfg *sweep.Config) error {
	for _, tok := range strings.Fields(spec) {
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return fmt.Errorf("repro: %q is not key=value", tok)
		}
		switch k {
		case "op":
			cfg.Op = v
		case "access", "recovery-access":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return fmt.Errorf("repro: bad %s %q", k, v)
			}
			if k == "access" {
				cfg.Access = n
			} else {
				cfg.RecoveryAccess = n
			}
		case "epoch":
			// Informational coordinate: names the publication-epoch trigger
			// (refill/heartbeat/scan/detach/...) the crash landed in. The
			// replay is fully determined by op+access; accept it so repro
			// lines paste back verbatim.
		default:
			return fmt.Errorf("repro: unknown key %q", k)
		}
	}
	if cfg.Op == "" {
		return fmt.Errorf("repro: op= is required")
	}
	if cfg.RecoveryAccess > 0 {
		cfg.RecoverySweep = true
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "faultsim:", err)
	os.Exit(1)
}
