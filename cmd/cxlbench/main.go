// Command cxlbench regenerates the tables and figures of the CXL-SHM paper's
// evaluation (§6) on the simulated device. Each subcommand corresponds to
// one table or figure; `cxlbench all` runs everything.
//
// Usage:
//
//	cxlbench [-scale F] table1|fig6|fig7|recovery|fig8|fig9|fig10a|fig10b|fig10c|fig10d|all
//
// -scale multiplies iteration counts (default 1.0 ≈ seconds per experiment;
// use 5–10 for steadier numbers on a quiet machine).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/shm"
)

func main() {
	scaleFlag := flag.Float64("scale", 1.0, "iteration-count multiplier")
	threads := flag.String("threads", "1,2,4,8", "comma-separated thread/client counts")
	metrics := flag.Bool("metrics", false, "collect pool metrics; write BENCH_<name>_metrics.json per experiment and print a summary")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	scale := bench.Scale{Factor: *scaleFlag}
	counts, err := parseInts(*threads)
	if err != nil {
		fatal(err)
	}
	if *metrics {
		obs.EnableGlobal()
	}

	run := func(name string) {
		start := time.Now()
		var before obs.Snapshot
		if *metrics {
			before = obs.GlobalSnapshot()
		}
		fmt.Printf("== %s ==\n", name)
		switch name {
		case "table1":
			rows, err := bench.Table1(scale)
			if err != nil {
				fatal(err)
			}
			bench.PrintTable1(os.Stdout, rows)
		case "fastpath":
			rows, err := bench.FastPath(scale)
			if err != nil {
				fatal(err)
			}
			bench.PrintFastPath(os.Stdout, rows)
			data, err := bench.MarshalFastPath(rows, fastPathProvenance())
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile("BENCH_fastpath.json", append(data, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Println("written to BENCH_fastpath.json")
		case "fastpath-compare":
			committed, err := os.ReadFile("BENCH_fastpath.json")
			if err != nil {
				fatal(fmt.Errorf("no committed baseline (run `cxlbench fastpath` first): %w", err))
			}
			want, err := bench.UnmarshalFastPath(committed)
			if err != nil {
				fatal(err)
			}
			rows, err := bench.FastPath(scale)
			if err != nil {
				fatal(err)
			}
			bench.PrintFastPath(os.Stdout, rows)
			if regs := bench.CompareFastPath(want, rows, 0.10); len(regs) > 0 {
				for _, r := range regs {
					fmt.Fprintf(os.Stderr, "REGRESSION %s\n", r)
				}
				fatal(fmt.Errorf("%d fast-path op(s) regressed >10%% vs committed BENCH_fastpath.json", len(regs)))
			}
			fmt.Println("all ops within 10% of committed BENCH_fastpath.json")
		case "scale":
			rows, err := bench.ClientScaling(scale, nil)
			if err != nil {
				fatal(err)
			}
			rec, err := bench.ConcurrentRecovery(scale)
			if err != nil {
				fatal(err)
			}
			bench.PrintScale(os.Stdout, rows, rec)
			data, err := bench.MarshalScale(rows, rec, scaleProvenance())
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile("BENCH_scale.json", append(data, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Println("written to BENCH_scale.json")
		case "scale-compare":
			committed, err := os.ReadFile("BENCH_scale.json")
			if err != nil {
				fatal(fmt.Errorf("no committed baseline (run `cxlbench scale` first): %w", err))
			}
			want, _, err := bench.UnmarshalScale(committed)
			if err != nil {
				fatal(err)
			}
			rows, err := bench.ClientScaling(scale, nil)
			if err != nil {
				fatal(err)
			}
			bench.PrintScale(os.Stdout, rows, nil)
			if regs := bench.CompareScale(want, rows, 0.10); len(regs) > 0 {
				for _, r := range regs {
					fmt.Fprintf(os.Stderr, "REGRESSION %s\n", r)
				}
				fatal(fmt.Errorf("%d scale point(s) regressed >10%% vs committed BENCH_scale.json", len(regs)))
			}
			fmt.Println("all points within 10% of committed BENCH_scale.json")
		case "fig6":
			rows, err := bench.Fig6(scale, counts)
			if err != nil {
				fatal(err)
			}
			bench.PrintFig6(os.Stdout, rows)
		case "fig7":
			rows, err := bench.Fig7(scale, counts, 400, 30)
			if err != nil {
				fatal(err)
			}
			bench.PrintFig7(os.Stdout, rows)
		case "recovery":
			rows, err := bench.RecoveryBench(scale, []int{1000, 5000, 20000}, 50000)
			if err != nil {
				fatal(err)
			}
			bench.PrintRecovery(os.Stdout, rows)
			segBytes, per, err := bench.SegmentScanBench(scale)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("segment-local scan: %v per %d KiB segment\n", per, segBytes/1024)
		case "blocking":
			rows, err := bench.BlockingBench(scale, 5000)
			if err != nil {
				fatal(err)
			}
			bench.PrintBlocking(os.Stdout, rows)
		case "fig8":
			rows, err := bench.Fig8Pairs(scale, counts)
			if err != nil {
				fatal(err)
			}
			bench.PrintFig8(os.Stdout, rows)
			prows, err := bench.Fig8Payload(scale, []int{64, 512, 4096, 32768, 524288})
			if err != nil {
				fatal(err)
			}
			fmt.Println("-- payload sweep (1 pair) --")
			bench.PrintFig8(os.Stdout, prows)
		case "fig9":
			rows, err := bench.Fig9(scale, counts)
			if err != nil {
				fatal(err)
			}
			bench.PrintFig9(os.Stdout, rows)
		case "fig10a":
			rows, err := bench.Fig10a(scale, counts)
			if err != nil {
				fatal(err)
			}
			bench.PrintFig10(os.Stdout, rows)
		case "fig10b":
			rows, err := bench.Fig10b(scale, 8, []float64{1, 0.5, 1.0 / 3, 0.25, 0.2, 0.1})
			if err != nil {
				fatal(err)
			}
			bench.PrintFig10(os.Stdout, rows)
		case "fig10c":
			rows, err := bench.Fig10c(scale, counts, []float64{0, 0.5, 0.9, 0.99})
			if err != nil {
				fatal(err)
			}
			bench.PrintFig10(os.Stdout, rows)
		case "fig10d":
			rows, err := bench.Fig10d(scale, counts)
			if err != nil {
				fatal(err)
			}
			bench.PrintFig10(os.Stdout, rows)
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
		if *metrics {
			writeMetrics(name, obs.GlobalSnapshot().Sub(before))
		}
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if flag.Arg(0) == "all" {
		for _, name := range []string{
			"table1", "fastpath", "scale", "fig6", "fig7", "recovery", "blocking",
			"fig8", "fig9", "fig10a", "fig10b", "fig10c", "fig10d",
		} {
			run(name)
		}
		return
	}
	for _, name := range flag.Args() {
		run(name)
	}
}

// fastPathProvenance stamps BENCH_fastpath.json with what produced it:
// build/environment plus the fixed pool geometry bench.FastPath uses.
func fastPathProvenance() *obs.Provenance {
	backend := os.Getenv(shm.BackendEnv)
	if backend == "" {
		backend = "heap"
	}
	prov := obs.CollectProvenance("cxlbench", backend)
	prov.LayoutVersion = layout.LayoutVersion
	prov.MaxClients = 8
	prov.NumSegments = 128
	prov.SegmentWords = 1 << 15
	prov.PageWords = 1 << 11
	return prov
}

// scaleProvenance stamps BENCH_scale.json with what produced it: the
// scaling curve's fixed 256+-slot geometry.
func scaleProvenance() *obs.Provenance {
	backend := os.Getenv(shm.BackendEnv)
	if backend == "" {
		backend = "heap"
	}
	prov := obs.CollectProvenance("cxlbench", backend)
	prov.LayoutVersion = layout.LayoutVersion
	prov.MaxClients = 260
	prov.NumSegments = 600
	prov.SegmentWords = 1 << 13
	prov.PageWords = 1 << 9
	return prov
}

func usage() {
	fmt.Fprint(os.Stderr, `cxlbench — regenerate the CXL-SHM paper's evaluation

usage: cxlbench [-scale F] [-threads 1,2,4,8] [-metrics] <experiment>...

-metrics collects pool observability counters during each experiment and
writes a BENCH_<experiment>_metrics.json snapshot alongside the printed
tables.

experiments:
  table1    memory-type micro-benchmark (paper Table 1)
  fastpath  device accesses + ns per fast-path op; writes BENCH_fastpath.json
  fastpath-compare
            re-measure and fail if any op's device accesses regressed >10%
            against the committed BENCH_fastpath.json (the CI gate)
  scale     client-scaling curve to 256 attachments + concurrent-recovery
            comparison; writes BENCH_scale.json
  scale-compare
            re-measure and fail if any point's per-client device accesses
            regressed >10% against the committed BENCH_scale.json (CI gate)
  fig6      threadtest/shbench allocator comparison (Figure 6)
  fig7      allocation fast-path cost breakdown (Figure 7)
  recovery  recovery throughput vs GC-based recovery (§6.2.1)
  blocking  survivor latency during recovery: non-blocking vs Lightning (§4.2)
  fig8      CXL-RPC vs SPSC vs pass-by-value RPC (Figure 8)
  fig9      CXL-MapReduce vs value-passing baseline (Figure 9)
  fig10a    KV store comparison across clients (Figure 10a)
  fig10b    KV write/read ratio sweep (Figure 10b)
  fig10c    KV YCSB zipf sweep (Figure 10c)
  fig10d    KV TATP/SmallBank transactions (Figure 10d)
  all       everything above
`)
}

func parseInts(s string) ([]int, error) {
	var out []int
	cur := 0
	seen := false
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if seen {
				out = append(out, cur)
			}
			cur, seen = 0, false
			continue
		}
		if s[i] < '0' || s[i] > '9' {
			return nil, fmt.Errorf("bad thread list %q", s)
		}
		cur = cur*10 + int(s[i]-'0')
		seen = true
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty thread list")
	}
	return out, nil
}

// writeMetrics dumps the experiment's metrics delta next to the experiment's
// output: a machine-readable JSON snapshot plus a terminal summary. The
// snapshot carries provenance (backend, layout version, build) so a stray
// BENCH_*_metrics.json always says what produced it; pool geometry is left
// out because each experiment sizes its own pools.
func writeMetrics(name string, snap obs.Snapshot) {
	fmt.Println("-- metrics --")
	snap.WriteSummary(os.Stdout)
	backend := os.Getenv(shm.BackendEnv)
	if backend == "" {
		backend = "heap"
	}
	prov := obs.CollectProvenance("cxlbench", backend)
	prov.LayoutVersion = layout.LayoutVersion
	data, err := obs.MarshalReportJSON(snap, nil, prov)
	if err != nil {
		fatal(err)
	}
	path := fmt.Sprintf("BENCH_%s_metrics.json", name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("metrics snapshot written to %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cxlbench:", err)
	os.Exit(1)
}
